"""Sv39-style page tables, stored in simulated physical memory.

The GC unit "operates on virtual addresses" with its own TLBs and page-table
walker (§V-C); the Linux driver passes the process's page-table base pointer
to the unit's MMIO registers (§V-E). We build a RISC-V Sv39-like 3-level
table: 4 KiB pages, 9 bits of VPN per level, 8-byte PTEs, with the tables
themselves resident in :class:`~repro.memory.memimage.PhysicalMemory` so
that the walker's accesses are real memory traffic (the traffic that
dominates Fig. 18a).

The heap's virtual mapping is linear: ``vaddr = paddr + VIRT_OFFSET``. The
offset is nonzero so that any confusion between address spaces faults
immediately in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory

PAGE_SIZE = 4096
SUPERPAGE_SIZE = 2 * 1024 * 1024  # level-1 leaf: 512 x 4 KiB
PTE_BYTES = 8
ENTRIES_PER_TABLE = PAGE_SIZE // PTE_BYTES  # 512 = 2^9
LEVELS = 3

#: Virtual = physical + VIRT_OFFSET for the linear heap mapping.
VIRT_OFFSET = 0x4000_0000

# PTE encoding (simplified Sv39): bit 0 = valid, bit 1 = leaf,
# bits 10.. = physical page number.
PTE_VALID = 1 << 0
PTE_LEAF = 1 << 1
PTE_PPN_SHIFT = 10


class PageFault(Exception):
    """Raised when translating an unmapped virtual address."""


def vpn_parts(vaddr: int) -> Tuple[int, int, int]:
    """Split a virtual address into (vpn2, vpn1, vpn0)."""
    vpn = vaddr // PAGE_SIZE
    return (vpn >> 18) & 0x1FF, (vpn >> 9) & 0x1FF, vpn & 0x1FF


class PageTable:
    """A 3-level page table materialized inside physical memory."""

    def __init__(self, mem: PhysicalMemory, region: Tuple[int, int]):
        self.mem = mem
        self._region_start, self._region_end = region
        if self._region_start % PAGE_SIZE:
            # Round the allocation cursor up to a page boundary.
            self._region_start += PAGE_SIZE - self._region_start % PAGE_SIZE
        self._next_table = self._region_start
        self.root = self._alloc_table()
        self.pages_mapped = 0

    def _alloc_table(self) -> int:
        addr = self._next_table
        self._next_table += PAGE_SIZE
        if self._next_table > self._region_end:
            raise MemoryError("page-table region exhausted")
        self.mem.fill(addr, ENTRIES_PER_TABLE, 0)
        return addr

    # -- construction -----------------------------------------------------------

    def map_page(self, vaddr: int, paddr: int) -> None:
        """Install a 4 KiB mapping vaddr -> paddr (both page-aligned)."""
        if vaddr % PAGE_SIZE or paddr % PAGE_SIZE:
            raise ValueError("map_page requires page-aligned addresses")
        indices = vpn_parts(vaddr)
        table = self.root
        for level in range(LEVELS - 1):
            pte_addr = table + indices[level] * PTE_BYTES
            pte = self.mem.read_word(pte_addr)
            if pte & PTE_VALID:
                table = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
            else:
                new_table = self._alloc_table()
                self.mem.write_word(
                    pte_addr, ((new_table // PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID
                )
                table = new_table
        leaf_addr = table + indices[LEVELS - 1] * PTE_BYTES
        self.mem.write_word(
            leaf_addr,
            ((paddr // PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID | PTE_LEAF,
        )
        self.pages_mapped += 1

    def map_superpage(self, vaddr: int, paddr: int) -> None:
        """Install a 2 MiB superpage: a leaf PTE at level 1 (§VII: "large
        heaps could use superpages instead of 4KB pages")."""
        if vaddr % SUPERPAGE_SIZE or paddr % SUPERPAGE_SIZE:
            raise ValueError("superpages require 2 MiB alignment")
        indices = vpn_parts(vaddr)
        table = self.root
        pte_addr = table + indices[0] * PTE_BYTES
        pte = self.mem.read_word(pte_addr)
        if pte & PTE_VALID:
            table = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
        else:
            new_table = self._alloc_table()
            self.mem.write_word(
                pte_addr, ((new_table // PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID
            )
            table = new_table
        leaf_addr = table + indices[1] * PTE_BYTES
        existing = self.mem.read_word(leaf_addr)
        if existing & PTE_VALID and not existing & PTE_LEAF:
            raise ValueError(
                f"{vaddr:#x} already has 4 KiB mappings under it"
            )
        self.mem.write_word(
            leaf_addr,
            ((paddr // PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID | PTE_LEAF,
        )
        self.pages_mapped += SUPERPAGE_SIZE // PAGE_SIZE

    def map_linear(self, vstart: int, pstart: int, nbytes: int,
                   superpages: bool = False) -> None:
        """Map a contiguous range with the linear vaddr = paddr + offset rule.

        With ``superpages=True``, 2 MiB-aligned stretches use superpage
        leaves and only the ragged edges fall back to 4 KiB pages.
        """
        if nbytes % PAGE_SIZE:
            nbytes += PAGE_SIZE - nbytes % PAGE_SIZE
        if not superpages:
            self._map_linear_pages(vstart, pstart, nbytes)
            return
        offset = 0
        while offset < nbytes:
            vaddr = vstart + offset
            paddr = pstart + offset
            if (vaddr % SUPERPAGE_SIZE == 0
                    and paddr % SUPERPAGE_SIZE == 0
                    and nbytes - offset >= SUPERPAGE_SIZE):
                self.map_superpage(vaddr, paddr)
                offset += SUPERPAGE_SIZE
            else:
                self.map_page(vaddr, paddr)
                offset += PAGE_SIZE

    def _map_linear_pages(self, vstart: int, pstart: int, nbytes: int) -> None:
        """Bulk 4 KiB path for :meth:`map_linear`.

        A linear range fills each level-0 table with consecutive leaf PTEs,
        so the PTEs are written as one numpy slice per table (512 entries)
        instead of one :meth:`map_page` walk per page. Produces bit-identical
        tables: every heap construction linear-maps the whole physical space,
        making this the dominant cost of building a ``ManagedHeap``.
        """
        if vstart % PAGE_SIZE or pstart % PAGE_SIZE:
            raise ValueError("map_page requires page-aligned addresses")
        words = self.mem.words
        n_pages = nbytes // PAGE_SIZE
        page = 0
        while page < n_pages:
            vaddr = vstart + page * PAGE_SIZE
            indices = vpn_parts(vaddr)
            table = self.root
            for level in range(LEVELS - 1):
                pte_addr = table + indices[level] * PTE_BYTES
                pte = self.mem.read_word(pte_addr)
                if pte & PTE_VALID:
                    table = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
                else:
                    new_table = self._alloc_table()
                    self.mem.write_word(
                        pte_addr,
                        ((new_table // PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID,
                    )
                    table = new_table
            vpn0 = indices[2]
            count = min(ENTRIES_PER_TABLE - vpn0, n_pages - page)
            base_ppn = (pstart + page * PAGE_SIZE) // PAGE_SIZE
            start = (table + vpn0 * PTE_BYTES) // WORD_BYTES
            ppns = np.arange(base_ppn, base_ppn + count, dtype=np.uint64)
            words[start:start + count] = (
                (ppns << np.uint64(PTE_PPN_SHIFT))
                | np.uint64(PTE_VALID | PTE_LEAF)
            )
            self.mem.note_dirty(start, count)
            self.pages_mapped += count
            page += count

    def unmap_page(self, vaddr: int) -> None:
        """Invalidate a leaf mapping (used by the relocating collector)."""
        leaf_addr = self._walk_to_leaf(vaddr)
        if leaf_addr is None:
            raise PageFault(f"unmap of unmapped page {vaddr:#x}")
        self.mem.write_word(leaf_addr, 0)

    # -- functional translation ----------------------------------------------------

    def _walk_to_leaf(self, vaddr: int) -> Optional[int]:
        """PTE address of the leaf mapping ``vaddr`` (any level), or None."""
        indices = vpn_parts(vaddr)
        table = self.root
        for level in range(LEVELS):
            pte_addr = table + indices[level] * PTE_BYTES
            pte = self.mem.read_word(pte_addr)
            if not pte & PTE_VALID:
                return None
            if pte & PTE_LEAF or level == LEVELS - 1:
                return pte_addr
            table = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
        return None  # pragma: no cover - loop always returns

    def is_superpage(self, vaddr: int) -> bool:
        """Whether ``vaddr`` is covered by a 2 MiB (level-1) leaf."""
        indices = vpn_parts(vaddr)
        pte = self.mem.read_word(self.root + indices[0] * PTE_BYTES)
        if not pte & PTE_VALID or pte & PTE_LEAF:
            return False
        table = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
        mid = self.mem.read_word(table + indices[1] * PTE_BYTES)
        return bool(mid & PTE_VALID and mid & PTE_LEAF)

    def translate(self, vaddr: int) -> int:
        """Functional translation; raises :class:`PageFault` when unmapped."""
        indices = vpn_parts(vaddr)
        table = self.root
        for level in range(LEVELS):
            pte = self.mem.read_word(table + indices[level] * PTE_BYTES)
            if not pte & PTE_VALID:
                raise PageFault(f"no leaf for {vaddr:#x}")
            if pte & PTE_LEAF:
                if level == 1:  # superpage: 2 MiB offset
                    base = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
                    return base + vaddr % SUPERPAGE_SIZE
                if level == LEVELS - 1:
                    return (pte >> PTE_PPN_SHIFT) * PAGE_SIZE \
                        + vaddr % PAGE_SIZE
                raise PageFault(f"unsupported giga-leaf for {vaddr:#x}")
            if level == LEVELS - 1:
                raise PageFault(f"invalid leaf PTE for {vaddr:#x}")
            table = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
        raise PageFault(f"no leaf for {vaddr:#x}")  # pragma: no cover

    def walk_addresses(self, vaddr: int) -> List[int]:
        """Physical addresses of the PTEs a hardware walk would read, in order.

        Used by the page-table walker so its timing accesses touch the real
        table locations (giving the PTW cache genuine locality in the upper
        levels). Superpage walks stop at the level-1 leaf: one fewer access,
        part of why §VII recommends superpages for large heaps.
        """
        indices = vpn_parts(vaddr)
        addresses = []
        table = self.root
        for level in range(LEVELS):
            pte_addr = table + indices[level] * PTE_BYTES
            addresses.append(pte_addr)
            pte = self.mem.read_word(pte_addr)
            if not pte & PTE_VALID:
                raise PageFault(f"walk hit invalid PTE for {vaddr:#x}")
            if pte & PTE_LEAF:
                break
            if level < LEVELS - 1:
                table = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE
        return addresses

    def __repr__(self) -> str:
        return f"PageTable(root={self.root:#x}, pages={self.pages_mapped})"
