"""GC unit end-to-end: correctness against ground truth and the software
collector, across the design space."""

import pytest

from repro.core import GCUnit, GCUnitConfig
from repro.swgc import SoftwareCollector

from tests.conftest import make_random_heap


def assert_marks_match_truth(heap, views, result):
    truth = heap.reachable()
    assert result.objects_marked == len(truth)
    parity = heap.mark_parity
    for view in views:
        assert view.is_marked(parity) == (view.addr in truth)


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_marks_exactly_the_reachable_set(self, seed):
        heap, views = make_random_heap(n_objects=300, seed=seed)
        result = GCUnit(heap).collect()
        assert_marks_match_truth(heap, views, result)
        heap.check_free_lists()

    def test_sweep_counts(self):
        heap, _views = make_random_heap(n_objects=300, seed=4)
        live_ms = len(heap.live_marksweep_objects())
        result = GCUnit(heap).collect()
        assert result.cells_live == live_ms
        assert result.cells_freed == 300 - live_ms

    def test_empty_heap(self, small_heap):
        small_heap.new_object(1, 1)
        small_heap.set_roots([])
        result = GCUnit(small_heap).collect()
        assert result.objects_marked == 0
        assert result.cells_freed == 1

    def test_single_object_cycle(self, small_heap):
        a = small_heap.new_object(1)
        a.set_ref(0, a.addr)
        small_heap.set_roots([a.addr])
        result = GCUnit(small_heap).collect()
        assert result.objects_marked == 1
        assert result.objects_requeued == 1  # the self-edge re-marks it

    def test_duplicate_roots(self, small_heap):
        a = small_heap.new_object(0)
        small_heap.set_roots([a.addr] * 5)
        result = GCUnit(small_heap).collect()
        assert result.objects_marked == 1
        assert result.objects_requeued == 4

    def test_large_object_space_traced(self, small_heap):
        big = small_heap.new_object(200, 100)  # LOS array
        leaf = small_heap.new_object(0)
        big.set_ref(7, leaf.addr)
        small_heap.set_roots([big.addr])
        result = GCUnit(small_heap).collect()
        assert result.objects_marked == 2

    def test_second_gc_flipped_parity(self):
        heap, views = make_random_heap(n_objects=200, seed=6)
        first = GCUnit(heap).collect()
        live = heap.reachable()
        heap.prune_dead(live)
        heap.complete_gc_cycle()
        second = GCUnit(heap).collect()
        assert second.objects_marked == first.objects_marked
        assert_marks_match_truth(heap, [heap.view(a) for a in heap.objects],
                                 second)


class TestEquivalenceWithSoftware:
    @pytest.mark.parametrize("config", [
        GCUnitConfig(),
        GCUnitConfig(mark_queue_entries=8),  # heavy spilling
        GCUnitConfig(address_compression=True, mark_queue_entries=8),
        GCUnitConfig(mark_bit_cache_entries=64),
        GCUnitConfig(tracer_queue_entries=2),
        GCUnitConfig(marker_slots=1),
        GCUnitConfig(n_sweepers=5),
        GCUnitConfig(cache_mode="shared"),
    ], ids=["baseline", "tiny-queue", "compressed", "mbc", "tiny-tq",
            "one-slot", "5-sweepers", "shared-cache"])
    def test_every_config_matches_software(self, config):
        heap, _views = make_random_heap(n_objects=250, seed=8)
        cp = heap.checkpoint()
        sw = SoftwareCollector(heap).collect()
        sw_free = heap.check_free_lists()
        heap.restore(cp)
        hw = GCUnit(heap, config).collect()
        hw_free = heap.check_free_lists()
        assert hw.objects_marked == sw.objects_marked
        assert hw.cells_freed == sw.cells_freed
        assert hw_free == sw_free


class TestResultCounters:
    def test_counters_consistent(self):
        heap, _views = make_random_heap(n_objects=400, seed=9)
        config = GCUnitConfig(mark_queue_entries=8, spill_out_entries=8,
                              spill_in_entries=8, spill_throttle_level=4)
        result = GCUnit(heap, config).collect()
        # Every spilled entry is eventually read back (conservation).
        assert result.spill_writes >= result.spill_reads > 0
        assert result.counters["queue_peak_entries"] > 0
        assert result.total_cycles == result.mark_cycles + result.sweep_cycles

    def test_phase_stats_captured(self):
        heap, _views = make_random_heap(n_objects=150, seed=10)
        unit = GCUnit(heap)
        unit.collect()
        assert sum(v for k, v in unit.mark_stats.items()
                   if k.startswith("mem.requests.")) > 0
        assert unit.mark_window[1] <= unit.sweep_window[0]

    def test_sweep_requires_mark(self):
        heap, _views = make_random_heap(n_objects=100, seed=11)
        unit = GCUnit(heap)
        with pytest.raises(RuntimeError):
            unit.sweep()


class TestDriverPath:
    def test_driver_runs_full_gc(self):
        from repro.core.driver import HWGCDriver
        from repro.core.mmio import Reg, Status
        heap, _views = make_random_heap(n_objects=150, seed=12)
        truth = len(heap.reachable())
        driver = HWGCDriver(heap)
        driver.init_device()
        assert driver.mmio.read(Reg.PAGE_TABLE_BASE) == \
            heap.memsys.page_table.root
        result = driver.run_gc()
        assert result.objects_marked == truth
        assert driver.mmio.read(Reg.OBJECTS_MARKED) == truth
        assert driver.mmio.status == Status.READY

    def test_driver_requires_init(self):
        heap, _views = make_random_heap(n_objects=80, seed=13)
        from repro.core.driver import HWGCDriver
        with pytest.raises(RuntimeError):
            HWGCDriver(heap).run_gc()
