"""JikesRVM-style managed heap substrate.

Implements the runtime-system side of the paper's co-design (§V-A):

* the **bidirectional object layout** (Fig. 6b) and the header/status-word
  encoding of Fig. 11 (tag bit, mark bit, 32-bit reference count with an
  array flag, replicated scan word at the cell start for linear sweeps);
* the **segregated free-list allocator**: memory divided into blocks, each
  assigned a size class that determines its cell size; cells hold either an
  object or a free-list entry;
* the MMTk-like **spaces** (MarkSweep, LargeObject, Immortal, Code) plus the
  hwgc root-communication region;
* the **root table** written into hwgc-space for the traversal unit; and
* functional ground-truth reachability used to verify both collectors.

Everything lives inside the simulated :class:`~repro.memory.memimage.
PhysicalMemory`, so the software GC, the accelerator, and the sweeper all
operate on real in-memory data structures.
"""

from repro.heap.header import (
    ARRAY_FLAG,
    MARK_BIT,
    TAG_BIT,
    decode_refcount,
    header_is_marked,
    make_header,
    make_scan_word,
    scan_word_is_object,
)
from repro.heap.sizeclass import SIZE_CLASSES_WORDS, SizeClassTable
from repro.heap.layout import BidirectionalLayout, ConventionalLayout, ObjectShape
from repro.heap.blocks import BLOCK_BYTES, BlockDescriptor, BlockList
from repro.heap.allocator import SegregatedFreeListAllocator
from repro.heap.spaces import Space, SpaceKind, SpacePlan
from repro.heap.roots import RootRegion
from repro.heap.objectmodel import ObjectView
from repro.heap.heapimage import ManagedHeap

__all__ = [
    "ARRAY_FLAG",
    "MARK_BIT",
    "TAG_BIT",
    "make_header",
    "make_scan_word",
    "decode_refcount",
    "header_is_marked",
    "scan_word_is_object",
    "SIZE_CLASSES_WORDS",
    "SizeClassTable",
    "ObjectShape",
    "BidirectionalLayout",
    "ConventionalLayout",
    "BLOCK_BYTES",
    "BlockDescriptor",
    "BlockList",
    "SegregatedFreeListAllocator",
    "Space",
    "SpaceKind",
    "SpacePlan",
    "RootRegion",
    "ObjectView",
    "ManagedHeap",
]
