"""Parallel figure pipeline: fan the suite across worker processes.

``run_suite(jobs=N)`` runs every entry of :data:`repro.harness.suite.SUITE`
(or a subset) and merges results deterministically:

* **jobs=1** runs inline — no pool, no pickling, and the in-process heap
  cache is shared across figures (fig15/fig23 and the avrora ablations
  reuse each other's builds).
* **jobs>1** fans entries out over a ``multiprocessing`` pool (``fork``
  start method where available, ``spawn`` otherwise). Workers return
  pickled :class:`FigureRun` records; completion order is arbitrary but
  the merge sorts by suite index, so the output document and the
  per-figure digests are independent of scheduling. Set
  ``REPRO_HEAP_CACHE`` to share heap builds across workers via the disk
  cache.

Every figure's rendered table is hashed into ``FigureRun.digest`` — the
fingerprint the determinism tests compare across kernels
(``REPRO_ENGINE=bucket`` vs ``heapq``) and across ``--jobs`` settings.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.suite import FigureRun, render_report, run_entry, select


def _run_indexed(task) -> FigureRun:
    """Module-level worker entry so it pickles under spawn."""
    index, exp_id, kwargs = task
    return run_entry(index, exp_id, kwargs)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context("spawn")


def run_suite(
    jobs: int = 1,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[FigureRun]:
    """Run the figure suite with ``jobs`` workers; results in suite order."""
    entries = select(only)
    tasks = [(i, exp_id, kwargs) for i, (exp_id, kwargs) in enumerate(entries)]
    jobs = max(1, min(jobs, len(tasks) or 1))
    say = progress if progress is not None else (lambda msg: None)

    runs: List[FigureRun] = []
    if jobs == 1:
        for task in tasks:
            say(f"running {task[1]} {task[2]} ...")
            run = _run_indexed(task)
            say(f"  {run.exp_id} done in {run.elapsed:.0f}s")
            runs.append(run)
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=jobs) as pool:
            say(f"running {len(tasks)} experiments on {jobs} workers ...")
            for run in pool.imap_unordered(_run_indexed, tasks):
                say(f"  {run.exp_id} done in {run.elapsed:.0f}s")
                runs.append(run)
    runs.sort(key=lambda r: r.index)
    return runs


def digests(runs: Sequence[FigureRun]) -> Dict[str, str]:
    """Per-figure determinism fingerprints, keyed by experiment id."""
    return {run.exp_id: run.digest for run in runs}


def default_jobs() -> int:
    """A sensible worker count when the user passes ``--jobs 0``."""
    return max(1, os.cpu_count() or 1)


def write_report(runs: Sequence[FigureRun], out_path: str) -> None:
    with open(out_path, "w") as fh:
        fh.write(render_report(runs))
