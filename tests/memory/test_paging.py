"""Sv39-style page tables in simulated memory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.memimage import PhysicalMemory
from repro.memory.paging import (
    LEVELS,
    PAGE_SIZE,
    PageFault,
    PageTable,
    VIRT_OFFSET,
    vpn_parts,
)


def make_table(mem_bytes=8 * 1024 * 1024):
    mem = PhysicalMemory(mem_bytes)
    table = PageTable(mem, (4096, 2 * 1024 * 1024))
    return mem, table


class TestMapping:
    def test_map_translate_roundtrip(self):
        _mem, table = make_table()
        table.map_page(VIRT_OFFSET, 0x30_0000)
        assert table.translate(VIRT_OFFSET) == 0x30_0000
        assert table.translate(VIRT_OFFSET + 0x123) == 0x30_0123

    def test_unmapped_faults(self):
        _mem, table = make_table()
        with pytest.raises(PageFault):
            table.translate(VIRT_OFFSET)

    def test_unaligned_rejected(self):
        _mem, table = make_table()
        with pytest.raises(ValueError):
            table.map_page(VIRT_OFFSET + 8, 0)

    def test_map_linear(self):
        _mem, table = make_table()
        table.map_linear(VIRT_OFFSET, 0x40_0000, 4 * PAGE_SIZE)
        for off in (0, PAGE_SIZE, 3 * PAGE_SIZE + 17):
            assert table.translate(VIRT_OFFSET + off) == 0x40_0000 + off

    def test_unmap(self):
        _mem, table = make_table()
        table.map_page(VIRT_OFFSET, 0x30_0000)
        table.unmap_page(VIRT_OFFSET)
        with pytest.raises(PageFault):
            table.translate(VIRT_OFFSET)

    def test_unmap_unmapped_raises(self):
        _mem, table = make_table()
        with pytest.raises(PageFault):
            table.unmap_page(VIRT_OFFSET)


class TestWalk:
    def test_walk_addresses_are_real_ptes(self):
        mem, table = make_table()
        table.map_page(VIRT_OFFSET, 0x30_0000)
        addrs = table.walk_addresses(VIRT_OFFSET)
        assert len(addrs) == LEVELS
        # All PTE reads land inside the page-table region.
        for addr in addrs:
            assert 4096 <= addr < 2 * 1024 * 1024
        # The leaf PTE encodes the mapped PPN.
        leaf = mem.read_word(addrs[-1])
        assert (leaf >> 10) * PAGE_SIZE == 0x30_0000

    def test_adjacent_pages_share_upper_levels(self):
        _mem, table = make_table()
        table.map_page(VIRT_OFFSET, 0)
        table.map_page(VIRT_OFFSET + PAGE_SIZE, PAGE_SIZE)
        a = table.walk_addresses(VIRT_OFFSET)
        b = table.walk_addresses(VIRT_OFFSET + PAGE_SIZE)
        assert a[:-1] == b[:-1]
        assert a[-1] != b[-1]

    def test_vpn_parts(self):
        vaddr = (3 << (12 + 18)) | (5 << (12 + 9)) | (7 << 12) | 0x123
        assert vpn_parts(vaddr) == (3, 5, 7)


@given(page_indices=st.sets(st.integers(0, 4000), min_size=1, max_size=60))
@settings(max_examples=30, deadline=None)
def test_many_mappings_translate_correctly(page_indices):
    _mem, table = make_table()
    mapping = {}
    for i, page in enumerate(sorted(page_indices)):
        vaddr = VIRT_OFFSET + page * PAGE_SIZE
        paddr = 0x280000 + i * PAGE_SIZE
        table.map_page(vaddr, paddr)
        mapping[vaddr] = paddr
    for vaddr, paddr in mapping.items():
        assert table.translate(vaddr + 8) == paddr + 8
