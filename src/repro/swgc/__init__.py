"""Software Mark & Sweep baseline on a Rocket-like in-order CPU model.

This is the paper's CPU baseline (§VI-A): Jikes's Mark & Sweep GC rewritten
in C (-O3), running on an in-order Rocket core at 1 GHz with 16 KB L1 caches
and a 256 KB L2 (Table I). The model executes the *identical* algorithm the
accelerator runs — the same header AMOs, the same reference-section walks,
the same per-block cell sweeps — but as a stream of dependent operations
through the CPU's cache hierarchy, with the control-flow and memory-level-
parallelism limits §IV-A describes: a blocked in-order pipeline can't run
ahead of a miss, and each newly discovered object costs a branch mispredict.
"""

from repro.swgc.cpu import CPUConfig, InOrderCPU
from repro.swgc.marksweep import SoftwareCollector, SoftwareGCResult

__all__ = ["CPUConfig", "InOrderCPU", "SoftwareCollector", "SoftwareGCResult"]
