"""Open-loop load balancer: one seeded arrival stream sprayed over tenants.

The balancer is deliberately dumb — uniform random spray, no health
checks, no pause awareness — because the figures measure what the *GC
policies* do to the tail, and a smart balancer would mask it. One global
stream (query ``g`` arrives at ``g * interval_cycles``) is assigned
tenant-by-tenant from a seed-derived RNG, so any per-tenant slice is
recomputable without materializing the others: exactly what the
per-tenant shard/cache cells need.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def spray(n_queries: int, n_tenants: int, seed: int) -> List[int]:
    """Tenant assignment per global query index, from the fleet seed."""
    rng = random.Random(f"fleet-balancer:{seed}")
    return [rng.randrange(n_tenants) for _ in range(n_queries)]


def tenant_arrivals(assignments: Sequence[int], interval_cycles: int,
                    tenant: int, warmup: int) -> Tuple[List[int], int]:
    """One tenant's slice of the global stream.

    Returns ``(arrival cycles, n_warmup)`` where ``n_warmup`` counts the
    tenant's arrivals that fall inside the fleet-wide warm-up window (the
    first ``warmup`` *global* queries). Because arrivals are assigned in
    global order, those are exactly the tenant's first ``n_warmup``
    arrivals — the form :class:`~repro.workloads.latency.QueryReplay`
    consumes. A tenant the spray never picked gets ``([], 0)``.
    """
    arrivals = [g * interval_cycles for g, t in enumerate(assignments)
                if t == tenant]
    n_warmup = sum(1 for t in assignments[:warmup] if t == tenant)
    return arrivals, n_warmup


def offline_split(arrivals: Sequence[int],
                  offline_after_cycle: int) -> Tuple[List[int], List[int]]:
    """Split one tenant's arrival slice at its crash cycle.

    Returns ``(live, offline)``: arrivals strictly before the cycle the
    tenant went offline, and the shed tail at/after it. The balancer
    keeps spraying at a dead tenant (it has no health checks, by design —
    see module docstring), so the shed tail is real traffic the
    conservation law must still count; the split lets the resilience
    report and the chaos battery predict exactly how many arrivals a
    crashed tenant sheds without replaying anything.
    """
    live = [a for a in arrivals if a < offline_after_cycle]
    return live, list(arrivals[len(live):])
