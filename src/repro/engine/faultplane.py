"""Deterministic fault injection into the *modeled* accelerator hardware.

PR 4 made the harness crash-tolerant; this module creates failures one
level down, inside the simulated unit itself: a DRAM response that never
arrives, a marker request slot that is never freed, a bit flip on a spill
path. The paper's deployment story leans on a software escape hatch for
exactly this class of problem — "by replacing libhwgc, we can swap in a
software implementation of our GC, as well as a version that performs
software checks of the hardware unit" (§V-E) — and the driver's safety net
(:meth:`repro.core.driver.HWGCDriver.run_gc_safe`) is what these faults
exercise.

Spec syntax (environment variable ``REPRO_HWFAULTS``), comma-separated::

    REPRO_HWFAULTS=<kind>:<component>[:<nth>|@<cycle>]

* ``kind`` — ``drop`` (a response/entry is lost), ``delay`` (a response is
  postponed by :data:`DEFAULT_DELAY_CYCLES`, far past the watchdog's
  patience), ``corrupt`` (a payload bit flips), or ``stuck`` (the component
  wedges permanently from the trigger point on).
* ``component`` — ``dram``, ``tlb``, ``marker``, ``markqueue`` or
  ``sweeper`` (the five hook families in the model).
* trigger — ``nth`` (1-based count of matching operations at that hook
  site; default 1) or ``@cycle`` (the first matching operation at or after
  that simulation cycle).

Injection is a pure function of ``(spec, operation index, cycle)`` — no
randomness — so every faulted run is exactly reproducible.

Zero-cost disabled path: the plane attaches to the
:class:`~repro.engine.stats.StatsRegistry` (``stats.hwfaults``), exactly
like the trace bus. With ``REPRO_HWFAULTS`` unset the class-level default
is ``None`` and every hook is one attribute load plus a ``None`` check —
no events, no allocation, no trace emission — so fault-free runs stay
bit-identical to the recorded digests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

ENV_VAR = "REPRO_HWFAULTS"

KINDS = ("drop", "delay", "corrupt", "stuck")
COMPONENTS = ("dram", "tlb", "marker", "markqueue", "sweeper")

#: How far a ``delay`` fault postpones a response. Chosen far beyond the
#: watchdog's ``stall_cycles``/``request_timeout`` thresholds so a delayed
#: response is always diagnosed as a stall rather than silently absorbed.
DEFAULT_DELAY_CYCLES = 2_000_000

#: Bit flipped by ``corrupt`` faults. Bit 33 keeps word alignment intact
#: while throwing addresses/counts far off — corruption manifests loudly
#: (translation errors, mark divergence) instead of shearing low bits into
#: a plausibly-valid neighbour.
CORRUPT_BIT = 1 << 33


class FaultSpecGrammarError(ValueError):
    """A comma-separated ``kind:target[...]`` fault spec does not parse.

    Shared base for the spec grammars of this plane (``REPRO_HWFAULTS``)
    and the fleet tier's :class:`repro.fleet.faults.FleetFaultSpec`, so
    callers that accept either spec style can catch one exception type.
    """


class HWFaultSpecError(FaultSpecGrammarError):
    """The ``REPRO_HWFAULTS`` spec does not parse."""


def split_spec_entries(spec: str) -> List[str]:
    """Split a comma-separated fault spec into stripped non-empty entries.

    The shared front half of both fault grammars (hardware plane and
    fleet tier): tolerate stray whitespace and empty chunks so specs can
    be assembled programmatically (``",".join(parts)`` with optional
    parts) without tripping the parser.
    """
    return [chunk.strip() for chunk in spec.split(",") if chunk.strip()]


@dataclass(frozen=True)
class HWFault:
    """One injected hardware fault."""

    kind: str
    component: str
    #: 1-based count of matching operations before triggering (used when
    #: ``at_cycle`` is None).
    nth: int = 1
    #: Alternative trigger: the first matching operation at/after this cycle.
    at_cycle: Optional[int] = None
    #: Extra cycles a ``delay`` fault adds to the response.
    delay_cycles: int = DEFAULT_DELAY_CYCLES

    def spec(self) -> str:
        if self.at_cycle is not None:
            return f"{self.kind}:{self.component}:@{self.at_cycle}"
        return f"{self.kind}:{self.component}:{self.nth}"


@dataclass(frozen=True)
class FiredFault:
    """A fault the plane actually injected, for the run report."""

    kind: str
    component: str
    cycle: int
    op_index: int

    def __str__(self) -> str:
        return (f"{self.kind}:{self.component} at cycle {self.cycle} "
                f"(op #{self.op_index})")


@dataclass
class FaultPlane:
    """Armed faults plus per-site operation counters.

    Components call :meth:`fire` at their hook sites only when a plane is
    attached (``stats.hwfaults is not None``), passing the site's kinds so
    a ``drop`` armed for enqueues is never consumed by a dequeue counter.
    ``stuck`` faults latch: once triggered, :meth:`fire` keeps returning
    the fault for that component (and :meth:`is_stuck` reports it) until
    the plane is suspended or reset.
    """

    faults: Tuple[HWFault, ...] = ()
    fired: List[FiredFault] = field(default_factory=list)
    suspended: bool = False

    def __post_init__(self) -> None:
        self._seen: Dict[int, int] = {i: 0 for i in range(len(self.faults))}
        self._consumed: Set[int] = set()
        self._stuck: Dict[str, HWFault] = {}
        self._stats = None
        self._mem = None

    # -- wiring ------------------------------------------------------------

    def install(self, stats, mem=None) -> "FaultPlane":
        """Attach to a registry (``stats.hwfaults``); ``mem`` is the
        :class:`~repro.memory.memimage.PhysicalMemory` corrupt faults
        flip bits in."""
        stats.hwfaults = self
        self._stats = stats
        if mem is not None:
            self._mem = mem
        return self

    def uninstall(self) -> None:
        if self._stats is not None and self._stats.hwfaults is self:
            self._stats.hwfaults = None
        self._stats = None

    # -- lifecycle ---------------------------------------------------------

    def suspend(self) -> None:
        """Mask the plane (the driver's safety net runs fault-free: the
        escape hatch assumes the CPU path works, §V-E)."""
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    def reset(self) -> None:
        """Re-arm every fault (clears counters, latches and the log)."""
        self._seen = {i: 0 for i in range(len(self.faults))}
        self._consumed.clear()
        self._stuck.clear()
        self.fired.clear()
        self.suspended = False

    # -- the hook API ------------------------------------------------------

    def fire(self, component: str, now: int,
             kinds: Tuple[str, ...] = KINDS) -> Optional[HWFault]:
        """Count one matching operation; return the fault to apply, if any.

        ``kinds`` restricts which fault kinds this hook site implements
        (and therefore which faults' counters the operation advances).
        Non-``stuck`` faults are one-shot; ``stuck`` latches permanently.
        """
        if self.suspended:
            return None
        latched = self._stuck.get(component)
        if latched is not None and "stuck" in kinds:
            return latched
        hit: Optional[HWFault] = None
        for i, fault in enumerate(self.faults):
            if fault.component != component or fault.kind not in kinds:
                continue
            if i in self._consumed:
                continue
            self._seen[i] += 1
            if fault.at_cycle is not None:
                triggered = now >= fault.at_cycle
            else:
                triggered = self._seen[i] == fault.nth
            if triggered and hit is None:
                hit = fault
                self._consumed.add(i)
                if fault.kind == "stuck":
                    self._stuck[component] = fault
                self._record(fault, now, self._seen[i])
        return hit

    def is_stuck(self, component: str) -> bool:
        """Whether ``component`` is latched stuck (and the plane active)."""
        return not self.suspended and component in self._stuck

    def corrupt_word(self, mem, paddr: int) -> int:
        """Flip :data:`CORRUPT_BIT` in the word at ``paddr``; returns the
        corrupted value. ``mem`` may be None if one was bound at install."""
        mem = mem if mem is not None else self._mem
        word = mem.read_word(paddr) ^ CORRUPT_BIT
        mem.write_word(paddr, word)
        return word

    @staticmethod
    def corrupt_value(value: int) -> int:
        """Flip :data:`CORRUPT_BIT` in an in-flight value (no memory)."""
        return value ^ CORRUPT_BIT

    def _record(self, fault: HWFault, now: int, op_index: int) -> None:
        self.fired.append(FiredFault(kind=fault.kind,
                                     component=fault.component,
                                     cycle=now, op_index=op_index))
        stats = self._stats
        if stats is not None:
            stats.inc(f"hwfault.{fault.kind}.{fault.component}")
            trace = stats.trace
            if trace is not None:
                trace.emit(now, "fault", fault.kind, fault.component,
                           op_index)

    def __bool__(self) -> bool:
        return bool(self.faults)


def parse_hwfault_spec(spec: str) -> FaultPlane:
    """Parse ``kind:component[:nth|@cycle],...`` into a :class:`FaultPlane`."""
    faults: List[HWFault] = []
    for chunk in split_spec_entries(spec):
        parts = chunk.split(":")
        if len(parts) not in (2, 3):
            raise HWFaultSpecError(
                f"bad hwfault {chunk!r}: expected kind:component[:nth|@cycle]")
        kind, component = parts[0], parts[1]
        if kind not in KINDS:
            raise HWFaultSpecError(
                f"bad hwfault {chunk!r}: kind must be one of "
                f"{'/'.join(KINDS)}")
        if component not in COMPONENTS:
            raise HWFaultSpecError(
                f"bad hwfault {chunk!r}: component must be one of "
                f"{'/'.join(COMPONENTS)}")
        nth = 1
        at_cycle: Optional[int] = None
        if len(parts) == 3:
            trigger = parts[2]
            try:
                if trigger.startswith("@"):
                    at_cycle = int(trigger[1:])
                    if at_cycle < 0:
                        raise ValueError
                else:
                    nth = int(trigger)
                    if nth < 1:
                        raise ValueError
            except ValueError:
                raise HWFaultSpecError(
                    f"bad hwfault {chunk!r}: trigger must be a count >= 1 "
                    f"or @cycle") from None
        faults.append(HWFault(kind=kind, component=component, nth=nth,
                              at_cycle=at_cycle))
    return FaultPlane(faults=tuple(faults))


def plane_from_env(environ=None) -> Optional[FaultPlane]:
    """The plane configured via ``REPRO_HWFAULTS``, or ``None`` if unset."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_VAR, "").strip()
    if not raw:
        return None
    return parse_hwfault_spec(raw)
