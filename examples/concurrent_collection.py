#!/usr/bin/env python3
"""Concurrent GC demo: barriers, relocation, and the races they close.

Reproduces the paper's §IV-D scenarios:

1. **The hidden-object race (Fig. 3)** — the traversal unit marks while a
   mutator keeps moving references. Without a write barrier, reachable
   objects get lost; with the barrier (overwritten references published to
   hwgc-space, consumed by the unit's reader mid-traversal) nothing is.

2. **Relocation with a read barrier (Fig. 9)** — the relocating sweep
   evacuates blocks, building a forwarding table; mutator loads through
   the read barrier transparently land on the new addresses, and the
   remap pass rewrites stale fields.

3. **A full concurrent collection through the driver** — the pieces
   assembled: ``run_gc_concurrent`` runs an allocating, mutating
   application *during* marking (relocation served mid-traversal from the
   forwarding table), and the only pause is the termination handshake
   plus the sweep. A second round wedges the marker to show the same
   watchdog + software fallback protecting the concurrent path.

Run:  python examples/concurrent_collection.py
"""

from repro.core import GCUnit, GCUnitConfig
from repro.core.concurrent import (
    ConcurrentMarkSimulation,
    MutatorBarriers,
    RelocatingSweep,
)
from repro.core.driver import HWGCDriver
from repro.engine.faultplane import parse_hwfault_spec
from repro.workloads import ConcurrentMutator, DACAPO_PROFILES, \
    HeapGraphBuilder


def hidden_object_race() -> None:
    print("=== 1. Concurrent marking vs a mutating application ===\n")
    for barrier in (False, True):
        built = HeapGraphBuilder(DACAPO_PROFILES["pmd"], scale=0.008,
                                 seed=2).build()
        outcome = ConcurrentMarkSimulation(
            built.heap, n_mutations=400, mutation_period=150,
            write_barrier_enabled=barrier, seed=2,
        ).run()
        label = "write barrier ON " if barrier else "write barrier OFF"
        print(f"  {label}: {outcome.mutations} mutations raced the "
              f"traversal, {outcome.write_barrier_hits} barrier hits, "
              f"{len(outcome.lost_objects)} reachable objects LOST")
        if barrier:
            assert not outcome.lost_objects
    print("\n  The barrier publishes every overwritten reference into the "
          "root region,\n  where the unit's reader picks it up — no "
          "reachable object can hide (Fig. 3, closed).\n")


def relocation_with_read_barrier() -> None:
    print("=== 2. Relocating sweep + read barrier ===\n")
    built = HeapGraphBuilder(DACAPO_PROFILES["avrora"], scale=0.008,
                             seed=3).build()
    heap = built.heap
    GCUnit(heap, GCUnitConfig()).collect()  # mark, so liveness is known

    reachable_before = heap.reachable()
    sweep = RelocatingSweep(heap)
    table = sweep.evacuate_blocks([0, 1, 2, 3])
    print(f"  evacuated {sweep.objects_moved} live objects "
          f"({sweep.bytes_copied} bytes) out of 4 blocks; forwarding table "
          f"holds {len(table)} entries")

    barriers = MutatorBarriers(heap, forwarding=table)
    # A mutator load through the barrier returns the post-move address.
    sample_old = next(iter(table.old_addresses()))
    print(f"  read barrier: {sample_old:#x} -> "
          f"{table.resolve(sample_old):#x} "
          f"(delta {table.delta(sample_old):#x}, no trap, no branch)")

    fixed = sweep.fixup_references(table)
    reachable_after = heap.reachable()
    moved_set = {table.resolve(a) for a in reachable_before}
    assert reachable_after == moved_set
    print(f"  remap pass rewrote {fixed} stale fields; the object graph is "
          f"isomorphic\n  ({len(reachable_after)} reachable objects before "
          "and after). Fig. 4's race: closed.\n")
    print(f"  mutator read-barrier self-heals: {barriers.read_barrier_fixes}"
          " fields fixed lazily during loads")


def full_concurrent_collection() -> None:
    print("\n=== 3. A full concurrent collection through the driver ===\n")
    built = HeapGraphBuilder(DACAPO_PROFILES["lusearch"], scale=0.01,
                             seed=5).build()
    heap = built.heap
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()
    mutator = ConcurrentMutator(built, n_ops=200, seed=5)
    result = driver.run_gc_concurrent(mutator, relocate_blocks=2)
    racing_pct = 100.0 * result.concurrent_cycles / result.mark_cycles
    print(f"  {result.objects_marked} objects marked while the mutator ran "
          f"{result.mutator_ops} ops ({result.mutator_allocs} allocations, "
          "born black)")
    print(f"  write barrier published {result.write_barrier_hits} "
          f"overwritten refs; reader drained {result.barrier_appends_read} "
          "mid-traversal")
    print(f"  relocation: {result.objects_relocated} objects moved, "
          f"{result.refs_forwarded} queue refs + "
          f"{result.read_barrier_fixes} mutator loads served from the "
          f"forwarding table, {result.fields_fixed} stale fields fixed up")
    print(f"  pause: {result.pause_cycles} cycles (handshake "
          f"{result.handshake_cycles} + sweep {result.sweep_cycles}) — "
          f"{racing_pct:.1f}% of marking overlapped the application\n")

    # Same cycle, wedged marker: the safety net catches concurrent mode too.
    built = HeapGraphBuilder(DACAPO_PROFILES["lusearch"], scale=0.01,
                             seed=5).build()
    heap = built.heap
    plane = parse_hwfault_spec("stuck:marker")
    plane.install(heap.memsys.stats, heap.memsys.phys)
    try:
        driver = HWGCDriver(heap, GCUnitConfig())
        driver.init_device()
        mutator = ConcurrentMutator(built, n_ops=200, seed=5)
        safe = driver.run_gc_safe(mode="concurrent", mutator=mutator,
                                  relocate_blocks=2)
        assert safe.fallback
        print(f"  wedged cycle: {safe.reason()}; the software net finished "
              f"the collection ({safe.result.cells_freed} cells freed)")
    finally:
        plane.uninstall()


def main() -> None:
    hidden_object_race()
    relocation_with_read_barrier()
    full_concurrent_collection()


if __name__ == "__main__":
    main()
