"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — available experiments and benchmarks.
* ``run <experiment> [opts]``   — regenerate one figure and print its table
                                  (e.g. ``python -m repro run fig15 --scale 0.05``).
* ``compare <benchmark> [opts]``— one SW-vs-HW collection on one profile.
* ``area``                      — print the Fig. 22 area tables.
* ``run-all [--jobs N] [--out EXPERIMENTS.md] [--only ids]
  [--resume DIR] [--timeout S] [--retries N] [--keep-going]
  [--shard-figures] [--worker-mode auto|pool|fresh]``
                                — regenerate the full figure set, fanning
                                  experiments across worker processes
                                  (persistent pool or fresh-per-task) with
                                  per-task timeouts, bounded retries,
                                  resumable checkpoints, intra-figure
                                  sharding, and the ``REPRO_SIM_CACHE``
                                  content-addressed result cache.
* ``trace <figure|profile> [opts]``
                                — capture a cycle-stamped trace of one GC
                                  and export it (Chrome trace / JSONL / CSV).
* ``fault-drill [--spec kind:component[:nth|:@cycle],...] [opts]``
                                — inject hardware faults into one collection,
                                  print the watchdog diagnosis, and verify
                                  the software-fallback recovery against the
                                  fault-free oracle.
* ``fleet [--policy dedicated,shared,software] [--lbo] [opts]``
                                — simulate the multi-tenant fleet and print
                                  the SLO report (and optionally the
                                  lower-bound-overhead table).
* ``fleet --faults SPEC``       — arm the fleet fault plane (crashed /
                                  browned-out / slow units and tenants)
                                  and print the degraded-mode resilience
                                  table: availability, failovers, retry
                                  wait, fallback tax.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.workloads.profiles import DACAPO_PROFILES
    print("experiments:")
    for name, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:16s} {doc}")
    print("\nbenchmark profiles:")
    for name, profile in DACAPO_PROFILES.items():
        print(f"  {name:10s} {profile.description.split(':')[0]}")
    return 0


def _cmd_run(args) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    fn = ALL_EXPERIMENTS.get(args.experiment)
    if fn is None:
        print(f"unknown experiment {args.experiment!r}; try `list`",
              file=sys.stderr)
        return 2
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = fn(**kwargs)
    print(result.render())
    return 0


def _cmd_compare(args) -> int:
    from repro.harness.runners import run_gc_comparison
    from repro.workloads.profiles import DACAPO_PROFILES
    profile = DACAPO_PROFILES.get(args.benchmark)
    if profile is None:
        print(f"unknown benchmark {args.benchmark!r}; try `list`",
              file=sys.stderr)
        return 2
    comp = run_gc_comparison(profile, scale=args.scale or 0.03,
                             seed=args.seed or 1)
    print(comp.summary())
    print(f"overall speedup: {comp.overall_speedup:.2f}x")
    return 0


def _cmd_area(_args) -> int:
    from repro.harness.experiments import fig22
    print(fig22().render())
    return 0


def _cmd_run_all(args) -> int:
    import time

    from repro.harness.checkpoint import CheckpointError, open_store
    from repro.harness.faults import FaultSpecError
    from repro.harness.parallel import (
        SuiteRunError,
        default_jobs,
        digests,
        run_suite,
        write_report,
    )
    from repro.harness.suite import select

    jobs = args.jobs if args.jobs else default_jobs()
    only = args.only.split(",") if args.only else None
    t0 = time.time()
    try:
        entries = select(only)
        tasks = [(i, exp_id, kwargs)
                 for i, (exp_id, kwargs) in enumerate(entries)]
        store = open_store(args.resume, tasks)
        runs = run_suite(jobs=jobs, only=only,
                         progress=lambda msg: print(msg, flush=True),
                         timeout=args.timeout, retries=args.retries,
                         keep_going=args.keep_going, store=store,
                         shard_figures=args.shard_figures,
                         worker_mode=args.worker_mode)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except (CheckpointError, FaultSpecError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    except SuiteRunError as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        if args.resume:
            print(f"completed entries are checkpointed in {args.resume}; "
                  f"rerun with --resume {args.resume} to continue",
                  file=sys.stderr)
        return 1
    elapsed = time.time() - t0
    if args.out:
        write_report(runs, args.out)
        print(f"wrote {args.out}")
    if args.digests:
        for exp_id, digest in digests(runs).items():
            print(f"{exp_id:20s} {digest}")
    busy = sum(run.elapsed for run in runs)
    retried = [r for r in runs if r.attempts > 1 and r.ok]
    failed = [r for r in runs if not r.ok]
    print(f"{len(runs)} experiments in {elapsed:.0f}s wall "
          f"({busy:.0f}s of simulation on {jobs} worker(s))")
    hits = sum(r.cache_hits for r in runs)
    misses = sum(r.cache_misses for r in runs)
    if hits or misses:
        print(f"sim cache: {hits} hit(s), {misses} simulated "
              f"cell(s)")
    if retried:
        print(f"{len(retried)} recovered after retries: "
              + ", ".join(f"{r.exp_id} x{r.attempts}" for r in retried))
    for run in failed:
        print(f"FAILED {run.exp_id} after {run.attempts} attempt(s): "
              f"{run.error}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    from repro.engine.trace import write_chrome_trace, write_csv, write_jsonl
    from repro.harness.tracing import render_summary, trace_collection

    try:
        capture = trace_collection(args.target, scale=args.scale,
                                   seed=args.seed, collectors=args.collector)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(render_summary(capture))
    if args.out:
        if args.format == "chrome":
            write_chrome_trace(capture.events, args.out, meta={
                "target": capture.target, "profile": capture.profile,
                "scale": capture.scale, "seed": capture.seed,
                "digest": capture.digest,
            })
        elif args.format == "jsonl":
            write_jsonl(capture.events, args.out)
        else:
            write_csv(capture.events, args.out)
        print(f"wrote {args.out} ({args.format}, {len(capture.bus)} events)")
    if args.digest:
        print(capture.digest)
    return 0


def _cmd_fault_drill(args) -> int:
    import os

    from repro.core.config import GCUnitConfig
    from repro.core.driver import HWGCDriver
    from repro.engine.faultplane import (
        ENV_VAR,
        HWFaultSpecError,
        parse_hwfault_spec,
    )
    from repro.heap.verify import heap_digest
    from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder

    profile = DACAPO_PROFILES.get(args.benchmark)
    if profile is None:
        print(f"unknown benchmark {args.benchmark!r}; try `list`",
              file=sys.stderr)
        return 2
    spec = args.spec or os.environ.get(ENV_VAR, "").strip() or "drop:dram"
    try:
        plane = parse_hwfault_spec(spec)
    except HWFaultSpecError as exc:
        print(exc, file=sys.stderr)
        return 2

    def fresh():
        built = HeapGraphBuilder(profile, scale=args.scale,
                                 seed=args.seed).build()
        # The drill arms its plane explicitly on the faulted run only; an
        # env-armed plane would otherwise also hit the reference run.
        env_plane = built.heap.memsys.stats.hwfaults
        if env_plane is not None:
            env_plane.uninstall()
        return built

    # Fault-free reference: the logical heap state recovery must converge
    # to (a fallback from a concurrent cycle restores the pre-cycle
    # snapshot and finishes STW, so the STW reference applies there too).
    built = fresh()
    heap = built.heap
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()
    clean = driver.run_gc_safe()
    if clean.outcome != "hardware":
        print(f"fault-free reference run degraded: {clean.reason()}",
              file=sys.stderr)
        return 1
    heap.prune_dead(heap.reachable())
    reference = heap_digest(heap)
    print(f"fault-free reference digest: {reference}")

    built = fresh()
    heap = built.heap
    oracle = heap.reachable()
    plane.install(heap.memsys.stats, heap.memsys.phys)
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()
    if args.mode == "concurrent":
        from repro.workloads.mutator import ConcurrentMutator

        mutator = ConcurrentMutator(built, seed=args.seed)
        safe = driver.run_gc_safe(mode="concurrent", mutator=mutator,
                                  relocate_blocks=args.relocate_blocks)
    else:
        safe = driver.run_gc_safe()
    print(f"armed:   {spec} (mode: {args.mode})")
    print(f"fired:   {'; '.join(str(f) for f in safe.faults) or 'nothing'}")
    print(f"outcome: {safe.outcome} ({safe.reason()})")
    if safe.stall is not None:
        print(f"diagnosis: {safe.stall}")
    if safe.outcome == "hardware" and args.mode == "concurrent":
        # The mutator ran during marking, so the pre-GC oracle no longer
        # applies; the valid identity is the handshake oracle the cycle
        # itself was verified against.
        live_ok = heap.reachable() == safe.result.oracle
        digest_ok = safe.verification is not None and safe.verification.ok
        print(f"live set == handshake oracle: {live_ok}")
        print(f"software verification passed: {digest_ok}")
    else:
        live_ok = heap.reachable() == oracle
        heap.prune_dead(heap.reachable())
        digest_ok = heap_digest(heap) == reference
        print(f"recovered live set == oracle: {live_ok}")
        print(f"recovered heap digest == reference: {digest_ok}")
    if not (live_ok and digest_ok):
        return 1
    if args.expect_fallback and not safe.fallback:
        print("expected a fallback but the hardware run survived "
              "(fault absorbed); try a different --spec trigger",
              file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args) -> int:
    import hashlib

    from repro.fleet.admission import POLICIES, resolve_policy
    from repro.fleet.faults import FleetFaultSpec, FleetFaultSpecError
    from repro.harness.experiments import (
        fleet_lbo,
        fleet_resilience,
        fleet_slo,
    )

    # Count constraints first: the shared DRAM tax divides by --units and
    # the replay horizon multiplies by --queries, so zero/negative values
    # crash deep in the simulation with errors that name neither the flag
    # nor the bound. Mirror the policy-validation style: exit 2, state
    # the constraint.
    for flag, value, minimum in (("--units", args.units, 1),
                                 ("--tenants", args.tenants, 1),
                                 ("--queries", args.queries, 1),
                                 ("--warmup", args.warmup, 0),
                                 ("--gcs", args.gcs, 1)):
        if value < minimum:
            print(f"{flag} must be at least {minimum} (got {value})",
                  file=sys.stderr)
            return 2
    policies = [p.strip() for p in args.policy.split(",") if p.strip()]
    if not policies:
        # Mirror suite.select(): an empty selection must not silently
        # simulate nothing.
        print("empty policy selection; "
              f"valid policies: {', '.join(POLICIES)}", file=sys.stderr)
        return 2
    try:
        for policy in policies:
            resolve_policy(policy)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.faults is not None:
        try:
            faults = FleetFaultSpec.parse(args.faults)
            faults.validate(args.units, args.tenants)
        except FleetFaultSpecError as exc:
            print(exc, file=sys.stderr)
            return 2
        result = fleet_resilience(
            scale=args.scale, seed=args.seed, n_gcs=args.gcs,
            n_tenants=args.tenants, n_queries=args.queries,
            warmup=args.warmup, n_units=args.units,
            dram_tax=args.dram_tax,
            rosters=((args.faults.strip() or "no faults", args.faults),))
        rendered = result.render()
        print(rendered)
        if args.digest:
            print(hashlib.sha256(rendered.encode()).hexdigest())
        return 0
    result = fleet_slo(scale=args.scale, seed=args.seed, n_gcs=args.gcs,
                       n_tenants=args.tenants, n_queries=args.queries,
                       warmup=args.warmup, policies=tuple(policies),
                       n_units=args.units, dram_tax=args.dram_tax,
                       shed_backlog_intervals=args.shed_intervals)
    rendered = result.render()
    print(rendered)
    if args.lbo:
        print()
        print(fleet_lbo(scale=args.scale, seed=args.seed,
                        n_gcs=args.gcs).render())
    if args.digest:
        print(hashlib.sha256(rendered.encode()).hexdigest())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'A Hardware Accelerator for Tracing "
        "Garbage Collection' (ISCA 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments and profiles")
    run_parser = sub.add_parser("run", help="regenerate one figure")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--scale", type=float, default=None)
    run_parser.add_argument("--seed", type=int, default=None)
    cmp_parser = sub.add_parser("compare", help="SW vs HW on one profile")
    cmp_parser.add_argument("benchmark")
    cmp_parser.add_argument("--scale", type=float, default=None)
    cmp_parser.add_argument("--seed", type=int, default=None)
    sub.add_parser("area", help="print the area model (Fig. 22)")
    all_parser = sub.add_parser(
        "run-all", help="regenerate the full figure set (parallel)")
    all_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (0 = all cores)")
    all_parser.add_argument("--out", default=None, metavar="EXPERIMENTS.md",
                            help="write the assembled report here")
    all_parser.add_argument("--only", default=None,
                            help="comma-separated experiment ids")
    all_parser.add_argument("--digests", action="store_true",
                            help="print per-figure determinism fingerprints")
    all_parser.add_argument("--resume", default=None, metavar="DIR",
                            help="checkpoint completed figures here and "
                            "resume a previous run from the same directory")
    all_parser.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="kill and reschedule a figure that runs "
                            "longer than this (jobs > 1 only)")
    all_parser.add_argument("--retries", type=int, default=0,
                            help="retry a crashed/failed/hung figure up to "
                            "N times (exponential backoff)")
    all_parser.add_argument("--shard-figures", action="store_true",
                            help="also split shardable-axis figures "
                            "(fig01a, fig15-fig21) across the --jobs "
                            "workers; digests are unchanged")
    all_parser.add_argument("--worker-mode", default="auto",
                            choices=("auto", "pool", "fresh"),
                            help="jobs>1 discipline: persistent worker "
                            "pool, fresh process per task, or auto "
                            "(fresh iff REPRO_FAULTS is armed)")
    all_parser.add_argument("--keep-going", action="store_true",
                            help="on exhausted retries, annotate the "
                            "report and continue instead of aborting "
                            "(exit status is still non-zero)")
    trace_parser = sub.add_parser(
        "trace", help="capture a cycle-stamped trace of one collection")
    trace_parser.add_argument("target",
                              help="figure id (fig16) or profile (avrora)")
    trace_parser.add_argument("--scale", type=float, default=None)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--out", default=None, metavar="FILE",
                              help="write the event stream here")
    trace_parser.add_argument("--format", default="chrome",
                              choices=("chrome", "jsonl", "csv"),
                              help="export format (chrome://tracing JSON, "
                              "JSONL, or CSV)")
    trace_parser.add_argument("--collector", default="both",
                              choices=("both", "hw", "sw"),
                              help="which collector(s) to trace")
    trace_parser.add_argument("--digest", action="store_true",
                              help="print the stream's sha256 fingerprint")
    drill_parser = sub.add_parser(
        "fault-drill",
        help="inject hardware faults and verify the safety-net recovery")
    drill_parser.add_argument("--spec", default=None,
                              help="fault spec, same grammar as "
                              "REPRO_HWFAULTS: kind:component[:nth|:@cycle]"
                              "[,...] (kinds: drop/delay/corrupt/stuck; "
                              "components: dram/tlb/marker/markqueue/"
                              "sweeper). Defaults to $REPRO_HWFAULTS, "
                              "else drop:dram")
    drill_parser.add_argument("--benchmark", default="luindex",
                              help="workload profile to drill on")
    drill_parser.add_argument("--scale", type=float, default=0.008)
    drill_parser.add_argument("--seed", type=int, default=13)
    drill_parser.add_argument("--expect-fallback", action="store_true",
                              help="fail unless the fault actually forced "
                              "the software fallback")
    drill_parser.add_argument("--mode", default="stw",
                              choices=("stw", "concurrent"),
                              help="drill a stop-the-world collection or a "
                              "concurrent one (mutator racing the mark)")
    drill_parser.add_argument("--relocate-blocks", type=int, default=0,
                              metavar="N",
                              help="concurrent mode: evacuate N blocks in "
                              "the relocation prologue")
    fleet_parser = sub.add_parser(
        "fleet", help="simulate the multi-tenant fleet under SLO")
    fleet_parser.add_argument("--policy", default="dedicated,shared,software",
                              help="comma-separated GC scheduling policies "
                              "(dedicated, shared, software)")
    fleet_parser.add_argument("--tenants", type=int, default=4,
                              help="fleet size (mixed DaCapo profiles)")
    fleet_parser.add_argument("--units", type=int, default=1,
                              help="accelerator GC units behind the "
                              "shared-policy admission queue")
    fleet_parser.add_argument("--queries", type=int, default=3000,
                              help="length of the open-loop arrival stream")
    fleet_parser.add_argument("--warmup", type=int, default=150,
                              help="global queries discarded as warm-up")
    fleet_parser.add_argument("--gcs", type=int, default=2,
                              help="collections per tenant base run")
    fleet_parser.add_argument("--scale", type=float, default=0.015)
    fleet_parser.add_argument("--seed", type=int, default=1)
    fleet_parser.add_argument("--dram-tax", type=float, default=0.25,
                              help="shared-DRAM contention service-rate tax")
    fleet_parser.add_argument("--shed-intervals", type=int, default=0,
                              metavar="N",
                              help="shed a query arriving > N intervals "
                              "behind (0 = never shed)")
    fleet_parser.add_argument("--faults", default=None, metavar="SPEC",
                              help="arm the fleet fault plane and print "
                              "the resilience table instead: comma-"
                              "separated kind:target[@cycle][+duration]"
                              "[xfactor], kinds crash/brownout/slow, "
                              "targets u<N>/t<N> (shared policy)")
    fleet_parser.add_argument("--lbo", action="store_true",
                              help="also print the lower-bound-overhead "
                              "(Cai et al.) table")
    fleet_parser.add_argument("--digest", action="store_true",
                              help="print the SLO table's sha256 "
                              "fingerprint")
    args = parser.parse_args(argv)
    return {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "area": _cmd_area,
        "run-all": _cmd_run_all,
        "trace": _cmd_trace,
        "fault-drill": _cmd_fault_drill,
        "fleet": _cmd_fleet,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
