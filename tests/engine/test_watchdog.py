"""Watchdog supervision: stall detection, diagnosis, event discarding."""

import pytest

from repro.engine.simulator import SimulationError, Simulator, StallReport
from repro.engine.stats import StatsRegistry
from repro.engine.watchdog import GCWatchdog


class TestStallReport:
    def test_is_a_simulation_error(self):
        report = StallReport("deadlock: event queue empty", cycle=7)
        assert isinstance(report, SimulationError)
        assert report.cycle == 7

    def test_bare_deadlock_still_matches_legacy_handlers(self, sim):
        # Pre-watchdog callers catch SimulationError and match "deadlock";
        # the structured report must not break them.
        ev = sim.event()
        with pytest.raises(SimulationError, match="deadlock") as exc_info:
            sim.run_until(ev)
        assert isinstance(exc_info.value, StallReport)
        assert exc_info.value.culprit == ""  # no diagnostician attached

    def test_deadlock_routes_through_attached_diagnostics(self, sim):
        wd = GCWatchdog().attach(sim)
        wd.note_submit("dram", "req0", 0, "read 8B @0x1000 from marker")
        ev = sim.event()
        with pytest.raises(StallReport) as exc_info:
            sim.run_until(ev)
        report = exc_info.value
        assert report.culprit == "dram"
        assert "read 8B @0x1000" in str(report)
        assert wd.trips == 1
        wd.detach(sim)
        assert sim.diagnostics is None


class TestDetectionRules:
    def test_supervised_run_returns_event_value(self, sim):
        wd = GCWatchdog(check_interval=10)
        ev = sim.event()
        sim.schedule(25, ev.trigger, "done")
        assert wd.run_until(sim, ev) == "done"
        assert wd.trips == 0

    def test_no_progress_trips(self, sim):
        # One event parked far beyond the stall threshold: the queue never
        # drains (no deadlock) but nothing is processed either.
        wd = GCWatchdog(stall_cycles=500, check_interval=100)
        wd.beat("marker", 0)
        sim.schedule(10_000_000, lambda: None)
        ev = sim.event()
        with pytest.raises(StallReport, match="no progress") as exc_info:
            wd.run_until(sim, ev)
        assert exc_info.value.culprit == "marker"  # stalest heartbeat

    def test_overdue_request_trips_despite_progress(self, sim):
        # A livelock: events keep flowing, but one tracked request never
        # completes. Only the request-timeout rule can catch this.
        wd = GCWatchdog(stall_cycles=10**9, request_timeout=300,
                        check_interval=100)

        def chatter():
            while True:
                yield 50

        sim.process(chatter())
        wd.note_submit("tlb", "walk1", 0, "page walk for 0x4000")
        ev = sim.event()
        with pytest.raises(StallReport, match="overdue") as exc_info:
            wd.run_until(sim, ev)
        report = exc_info.value
        assert report.culprit == "tlb"
        assert "page walk for 0x4000" in report.oldest_request

    def test_completed_request_does_not_trip(self, sim):
        wd = GCWatchdog(request_timeout=300, check_interval=100)
        wd.note_submit("dram", "r1", 0, "read")
        wd.note_complete("dram", "r1")
        ev = sim.event()
        sim.schedule(10_000, ev.trigger, "ok")
        assert wd.run_until(sim, ev) == "ok"


class TestDiagnosis:
    def test_probe_ranking_follows_registration_order(self, sim):
        wd = GCWatchdog().attach(sim)
        wd.register_probe("markq.entries", "markqueue", lambda: 0)
        wd.register_probe("recl.blocks", "sweeper", lambda: 3)
        report = wd.diagnose(sim, sim.event(), "stall")
        assert report.culprit == "sweeper"
        assert report.occupancies == {"markq.entries": 0, "recl.blocks": 3}

    def test_outstanding_request_outranks_probes(self, sim):
        wd = GCWatchdog().attach(sim)
        wd.register_probe("markq.entries", "markqueue", lambda: 9)
        wd.note_submit("dram", "r", 5, "read 64B")
        report = wd.diagnose(sim, sim.event(), "stall")
        assert report.culprit == "dram"

    def test_crashing_probe_reports_minus_one(self, sim):
        wd = GCWatchdog().attach(sim)
        wd.register_probe("broken", "marker",
                          lambda: (_ for _ in ()).throw(RuntimeError()))
        report = wd.diagnose(sim, sim.event(), "stall")
        assert report.occupancies == {"broken": -1}

    def test_diagnosis_collects_fired_faults_and_counters(self, sim):
        from repro.engine.faultplane import parse_hwfault_spec

        stats = StatsRegistry()
        plane = parse_hwfault_spec("drop:dram")
        plane.install(stats)
        plane.fire("dram", 42)
        wd = GCWatchdog().attach(sim, stats)
        report = wd.diagnose(sim, sim.event(), "stall")
        assert [str(f) for f in report.faults] == \
            ["drop:dram at cycle 42 (op #1)"]
        assert "injected faults" in str(report)
        assert stats.get("watchdog.trips") == 1
        wd.detach(sim)
        assert stats.watchdog is None


class TestDiscardPending:
    def test_discard_clears_the_queue(self, sim):
        hits = []
        sim.schedule(10, lambda: hits.append(1))
        sim.schedule(20, lambda: hits.append(2))
        assert sim.discard_pending() == 2
        assert sim.pending_events == 0
        sim.run()
        assert hits == []

    def test_discard_empty_queue_is_zero(self, sim):
        assert sim.discard_pending() == 0

    def test_sim_usable_after_discard(self, sim):
        sim.schedule(10, lambda: None)
        sim.discard_pending()
        hits = []
        sim.schedule(5, lambda: hits.append(sim.now))
        sim.run()
        assert hits  # new events still fire after the purge
