"""Object header encoding (paper Fig. 11).

Each live cell carries two metadata words:

* the **status word** (the word an object reference points at, and the word
  the marker fetch-ORs): ``[refcount:32 | thinlock:30 | mark:1 | tag:1]``.
  The 32-bit refcount field stores the number of reference fields; its MSB
  is set for arrays ("we use 32 of these bits to store the number of
  references in an object (for arrays, we set the MSB of these 32 bits to 1
  to distinguish them)", §V-A).
* the **scan word** replicated at the cell start ("we also replicate the
  reference count at the beginning of the array, which is necessary to
  enable linear scans through the heap"). Its low bits are ``0b101``; bit 0
  distinguishes a live cell from a free-list entry, whose next pointer is
  8-byte aligned and therefore has ``000`` in its low bits.

Mark-bit polarity alternates between collections ("mark parity"): GC epoch
*n* marks objects by driving the mark bit to ``n % 2 ^ 1``... concretely, the
heap tracks ``mark_parity``, the bit value meaning *marked in the current
collection*. Marking is a single AMO either way (fetch-or when parity is 1,
fetch-and when 0), and the sweeper never needs to clear mark bits — exactly
why the paper's sweeper can skip live cells without writing them.
"""

from __future__ import annotations

from typing import Tuple

TAG_BIT = 1 << 0  # 1 = live cell (object), 0 = free-list entry
MARK_BIT = 1 << 1
REFCOUNT_SHIFT = 32
ARRAY_FLAG = 1 << 63  # MSB of the 32-bit refcount field
REFCOUNT_MASK = (1 << 31) - 1  # 31 usable bits below the array flag

#: Low bits of the scan word (Fig. 11 shows ``#REFS | 101``).
SCAN_WORD_FLAGS = 0b101

MAX_REFS = REFCOUNT_MASK


def make_header(n_refs: int, is_array: bool = False, mark: int = 0) -> int:
    """Build a status word for a live object (tag bit always set)."""
    if not 0 <= n_refs <= MAX_REFS:
        raise ValueError(f"reference count out of range: {n_refs}")
    if mark not in (0, 1):
        raise ValueError(f"mark must be 0 or 1: {mark}")
    word = (n_refs << REFCOUNT_SHIFT) | TAG_BIT
    if is_array:
        word |= ARRAY_FLAG
    if mark:
        word |= MARK_BIT
    return word


def make_scan_word(n_refs: int, is_array: bool = False) -> int:
    """Build the replicated scan word placed at the cell start."""
    if not 0 <= n_refs <= MAX_REFS:
        raise ValueError(f"reference count out of range: {n_refs}")
    word = (n_refs << REFCOUNT_SHIFT) | SCAN_WORD_FLAGS
    if is_array:
        word |= ARRAY_FLAG
    return word


def decode_refcount(word: int) -> Tuple[int, bool]:
    """Extract (n_refs, is_array) from a status or scan word."""
    return (word >> REFCOUNT_SHIFT) & REFCOUNT_MASK, bool(word & ARRAY_FLAG)


def header_is_marked(word: int, parity: int) -> bool:
    """Whether a status word is marked under the given parity."""
    return ((word & MARK_BIT) != 0) == (parity == 1)


def header_with_mark(word: int, parity: int) -> int:
    """A status word with its mark bit driven to the given parity."""
    if parity == 1:
        return word | MARK_BIT
    return word & ~MARK_BIT


def scan_word_is_object(word: int) -> bool:
    """First-word test the sweeper performs (§V-D): LSB=1 means live object.

    Free cells hold an 8-byte-aligned next pointer (LSB=0); a zero word is
    the free-list terminator.
    """
    return bool(word & TAG_BIT)


def header_is_live(word: int) -> bool:
    """Tag-bit test: whether this status word belongs to a live cell."""
    return bool(word & TAG_BIT)
