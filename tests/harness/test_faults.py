"""Crash-injection suite: the runner must survive what faults.py throws.

Uses the two static-model suite entries (fig22, abl_barriers) so every
scenario runs in well under a second of real work, with tiny backoffs.
Crash/hang scenarios use ``jobs=2`` — with ``jobs=1`` faults execute in
this very process (by design; see :mod:`repro.harness.parallel`).
"""

import multiprocessing
import time

import pytest

from repro.harness import parallel
from repro.harness.checkpoint import CheckpointStore
from repro.harness.faults import (
    Fault,
    FaultInjected,
    FaultPlan,
    FaultSpecError,
    parse_spec,
    plan_from_env,
)
from repro.harness.parallel import SuiteRunError, digests, run_suite
from repro.harness.suite import select

ONLY = ["fig22", "abl_barriers"]  # static models: instant
BACKOFF = 0.01


def _tasks():
    return [(i, e, k) for i, (e, k) in enumerate(select(ONLY))]


@pytest.fixture(autouse=True)
def _no_env_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


class TestSpecParsing:
    def test_full_spec(self):
        plan = parse_spec("crash:fig16:1,hang:fig18:2,raise:fig20:*")
        assert plan.faults == (
            Fault("crash", "fig16", 1),
            Fault("hang", "fig18", 2),
            Fault("raise", "fig20", None),
        )

    def test_attempt_defaults_to_first(self):
        (fault,) = parse_spec("crash:fig16").faults
        assert fault.attempt == 1
        assert fault.matches("fig16", 1)
        assert not fault.matches("fig16", 2)
        assert not fault.matches("fig17", 1)

    def test_star_matches_every_attempt(self):
        (fault,) = parse_spec("raise:fig16:*").faults
        assert all(fault.matches("fig16", n) for n in (1, 2, 7))

    @pytest.mark.parametrize("bad", ["crash", "oops:fig16", "crash::1",
                                     "crash:fig16:0", "crash:fig16:x",
                                     "crash:fig16:1:2"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)

    def test_plan_from_env(self, monkeypatch):
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "raise:fig22:1")
        plan = plan_from_env()
        assert plan.match("fig22", 1).kind == "raise"
        assert plan.match("fig22", 2) is None

    def test_raise_fault_executes_inband(self):
        plan = parse_spec("raise:fig22:1")
        with pytest.raises(FaultInjected, match="raise:fig22:1"):
            plan.inject("fig22", 1)
        plan.inject("fig22", 2)  # no match: no-op


class TestCrashRecovery:
    def test_killed_worker_is_retried_and_recovered(self):
        """A worker segfault-exit on attempt 1 must not lose the run."""
        clean = run_suite(jobs=2, only=ONLY)
        plan = parse_spec("crash:fig22:1")
        lines = []
        runs = run_suite(jobs=2, only=ONLY, progress=lines.append,
                         retries=2, backoff=BACKOFF, fault_plan=plan)
        assert [r.exp_id for r in runs] == [r.exp_id for r in clean]
        assert digests(runs) == digests(clean)
        by_id = {r.exp_id: r for r in runs}
        assert by_id["fig22"].attempts == 2
        assert by_id["fig22"].attempt_history[0]["status"] == "crash"
        assert by_id["fig22"].attempt_history[1]["status"] == "ok"
        assert by_id["abl_barriers"].attempts == 1
        assert any("retrying" in line for line in lines)

    def test_exhausted_retries_keep_going_annotates(self):
        plan = parse_spec("crash:fig22:*")
        runs = run_suite(jobs=2, only=ONLY, retries=1, backoff=BACKOFF,
                         keep_going=True, fault_plan=plan)
        by_id = {r.exp_id: r for r in runs}
        failed = by_id["fig22"]
        assert not failed.ok and failed.attempts == 2
        assert "abnormally" in failed.error
        assert by_id["abl_barriers"].ok
        report = parallel.render_report(runs)
        assert "fig22: FAILED" in report
        assert "2 attempt(s)" in report
        # The healthy figure still renders its table.
        assert "unit/Rocket ratio" not in report  # fig22 is the failed one
        assert "abl_barriers" in report

    def test_exhausted_retries_without_keep_going_raises(self):
        plan = parse_spec("crash:fig22:*")
        with pytest.raises(SuiteRunError, match="fig22"):
            run_suite(jobs=2, only=ONLY, retries=1, backoff=BACKOFF,
                      fault_plan=plan)
        assert multiprocessing.active_children() == []

    def test_inline_raise_fault_is_retried(self):
        """jobs=1 path: in-band errors retry with the same accounting."""
        clean = run_suite(jobs=1, only=ONLY)
        plan = parse_spec("raise:abl_barriers:1")
        runs = run_suite(jobs=1, only=ONLY, retries=1, backoff=BACKOFF,
                         fault_plan=plan)
        assert digests(runs) == digests(clean)
        by_id = {r.exp_id: r for r in runs}
        assert by_id["abl_barriers"].attempts == 2
        assert "FaultInjected" in \
            by_id["abl_barriers"].attempt_history[0]["error"]


class TestHangRecovery:
    def test_timeout_fires_and_task_is_rescheduled(self):
        clean = run_suite(jobs=2, only=ONLY)
        plan = FaultPlan(faults=(Fault("hang", "fig22", 1),),
                         hang_seconds=60.0)
        t0 = time.monotonic()
        runs = run_suite(jobs=2, only=ONLY, retries=1, backoff=BACKOFF,
                         timeout=1.0, fault_plan=plan)
        assert time.monotonic() - t0 < 30.0  # killed, not slept out
        assert digests(runs) == digests(clean)
        by_id = {r.exp_id: r for r in runs}
        assert by_id["fig22"].attempts == 2
        assert by_id["fig22"].attempt_history[0]["status"] == "timeout"
        assert "timed out" in by_id["fig22"].attempt_history[0]["error"]
        assert multiprocessing.active_children() == []


class TestKeyboardInterrupt:
    def test_pool_torn_down_checkpoints_intact(self, tmp_path):
        """Ctrl-C mid-run: workers reaped, completed figures checkpointed,
        and a later --resume finishes only what's missing."""
        clean = run_suite(jobs=2, only=ONLY)
        store = CheckpointStore.open(tmp_path / "run", _tasks())

        def interrupt_after_first_done(msg):
            if "done" in msg:
                raise KeyboardInterrupt

        # fig22 hangs forever (no timeout); abl_barriers completes, its
        # "done" progress line triggers the interrupt.
        plan = FaultPlan(faults=(Fault("hang", "fig22", None),),
                         hang_seconds=600.0)
        with pytest.raises(KeyboardInterrupt):
            run_suite(jobs=2, only=ONLY, store=store, backoff=BACKOFF,
                      progress=interrupt_after_first_done, fault_plan=plan)
        assert multiprocessing.active_children() == []

        completed = store.load_completed()
        assert [r.exp_id for r in completed.values()] == ["abl_barriers"]
        assert not store.corrupt

        resumed = run_suite(jobs=2, only=ONLY, store=store)
        assert digests(resumed) == digests(clean)
        assert parallel.render_report(resumed) == \
            parallel.render_report(clean)


class TestCLIRecovery:
    def test_injected_crash_run_matches_clean_digests(self, monkeypatch,
                                                      capsys):
        from repro.__main__ import main

        def run(args):
            code = main(["run-all", "--jobs", "2", "--only",
                         ",".join(ONLY), "--retries", "2", "--digests",
                         *args])
            out = capsys.readouterr().out
            digest_lines = sorted(
                line for line in out.splitlines()
                if len(line.split()) == 2 and len(line.split()[1]) == 64)
            return code, digest_lines

        code, clean = run([])
        assert code == 0
        monkeypatch.setenv("REPRO_FAULTS", "crash:fig22:1")
        code, faulted = run([])
        assert code == 0
        assert faulted == clean

    def test_exhausted_retries_exit_nonzero(self, monkeypatch, capsys,
                                            tmp_path):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_FAULTS", "crash:fig22:*")
        out = tmp_path / "report.md"
        code = main(["run-all", "--jobs", "2", "--only", ",".join(ONLY),
                     "--retries", "1", "--keep-going", "--out", str(out)])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED fig22" in captured.err
        assert "fig22: FAILED" in out.read_text()

    def test_bad_fault_spec_exits_2(self, monkeypatch, capsys):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_FAULTS", "explode:fig22:1")
        assert main(["run-all", "--jobs", "1", "--only", "fig22"]) == 2
        assert "kind must be one of" in capsys.readouterr().err
