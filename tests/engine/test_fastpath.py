"""Completion semantics and the inline fast-path identity guarantee.

The zero-allocation fast paths (cache/TLB hits, queue handshakes, pipe
transfers) replace the ``Event`` + ``schedule(latency, event.trigger)``
idiom with a pre-resolved :class:`Completion`. Correctness hinges on two
properties, both pinned here:

* **Protocol equivalence** — a Completion observed through ``triggered``/
  ``value``/``add_callback``/``yield`` behaves exactly like the Event it
  replaces, including *where inside a cycle* its delivery lands
  (hop-preserving delivery).
* **Identity** — running the same workload with ``REPRO_FASTPATH`` on and
  off produces bit-identical cycle counts, marked sets, and event counts.
"""

import pytest

from repro.engine.simulator import (
    Completion,
    Event,
    Simulator,
    fastpath_enabled,
)


@pytest.fixture
def sim():
    return Simulator()


class TestFastpathSwitch:
    @pytest.mark.parametrize("raw", ["0", "off", "no", "false", "OFF", " 0 "])
    def test_disabled_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FASTPATH", raw)
        assert not fastpath_enabled()

    @pytest.mark.parametrize("raw", ["1", "on", "yes", "anything"])
    def test_enabled_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FASTPATH", raw)
        assert fastpath_enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert fastpath_enabled()


class TestCompletionSemantics:
    def test_triggered_follows_the_clock(self, sim):
        c = Completion(sim, sim.now + 5, "data")
        assert not c.triggered
        sim.run_until(sim.process(self._sleep(4)))
        assert not c.triggered
        sim.run_until(sim.process(self._sleep(1)))
        assert c.triggered
        assert c.value == "data"

    @staticmethod
    def _sleep(cycles):
        yield cycles

    def test_creation_schedules_nothing(self, sim):
        before = sim.events_processed
        Completion(sim, sim.now + 100, None)
        sim.run()
        assert sim.events_processed == before

    def test_ready_completion_consumed_synchronously(self, sim):
        log = []

        def proc():
            value = yield Completion(sim, sim.now, 42)
            log.append((sim.now, value))
            yield 1
            log.append((sim.now, "after"))

        sim.run_until(sim.process(proc()))
        assert log == [(0, 42), (1, "after")]

    def test_pending_completion_resumes_at_its_time(self, sim):
        log = []

        def proc():
            value = yield Completion(sim, sim.now + 7, "late")
            log.append((sim.now, value))

        sim.run_until(sim.process(proc()))
        assert log == [(7, "late")]

    def test_callback_on_ready_completion_runs_this_cycle(self, sim):
        log = []

        def proc():
            yield 3
            Completion(sim, sim.now - 1, "v").add_callback(
                lambda v: log.append((sim.now, v)))
            yield 1

        sim.run_until(sim.process(proc()))
        assert log == [(3, "v")]

    def test_hop_preserving_delivery_order(self, sim):
        """A pending Completion lands at the same intra-cycle position as
        the legacy ``schedule(latency, event.trigger)`` idiom it replaces.

        Both are armed at cycle 0 for cycle 5, legacy first. The legacy
        event's trigger fires first in the bucket and its waiter hop is
        appended; the Completion's ``_deliver`` runs second and appends its
        hop after — so waiters resume in arming order, not in reverse.
        """
        order = []

        def wait(handle, tag):
            value = yield handle
            order.append((tag, sim.now, value))

        legacy = Event(sim, name="legacy")
        sim.schedule(5, legacy.trigger, "ev")
        fast = Completion(sim, 5, "cp")
        sim.process(wait(legacy, "legacy"))
        sim.process(wait(fast, "fast"))
        sim.run()
        assert order == [("legacy", 5, "ev"), ("fast", 5, "cp")]

    def test_mixed_arming_delivery_positions(self, sim):
        """Deliveries land where each was *scheduled into the bucket*.

        The Event's trigger enters bucket 4 at arming time (cycle 0, before
        any waiter suspends); each pending Completion's delivery enters when
        its waiter suspends on it. So the Event's waiter resumes first even
        though its Completion-waiting peers were created earlier — the same
        positions the legacy ``schedule(latency, event.trigger)`` idiom
        produces, which is what keeps mixed fast/slow traffic bit-identical.
        """
        order = []

        def wait(handle, tag):
            yield handle
            order.append(tag)

        first = Completion(sim, 4, None)
        second = Event(sim, name="second")
        sim.schedule(4, second.trigger, None)
        third = Completion(sim, 4, None)
        for tag, handle in [("a", first), ("b", second), ("c", third)]:
            sim.process(wait(handle, tag))
        sim.run()
        assert order == ["b", "a", "c"]


class TestOnOffIdentity:
    """The same workload must be bit-identical with fast paths disabled."""

    @staticmethod
    def _run_gc(n_objects, seed):
        from repro.core.unit import GCUnit
        from repro.swgc import SoftwareCollector
        from tests.conftest import make_random_heap

        heap, _views = make_random_heap(n_objects=n_objects, seed=seed)
        checkpoint = heap.checkpoint()
        sw = SoftwareCollector(heap).collect()
        parity = heap.mark_parity
        marked = frozenset(
            a for a in heap.objects if heap.view(a).is_marked(parity))
        sw_events = heap.sim.events_processed
        heap.restore(checkpoint)
        hw = GCUnit(heap).collect()
        timing = (
            sw.mark_cycles, sw.sweep_cycles, sw.objects_marked,
            hw.mark_cycles, hw.sweep_cycles, hw.objects_marked, marked,
        )
        return timing, (sw_events, heap.sim.events_processed)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_gc_identical_on_and_off(self, monkeypatch, seed):
        """Cycle counts and marked sets match; the fast path may only
        *reduce* kernel events, never change simulated time."""
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        with_fast, fast_events = self._run_gc(220, seed)
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        without, slow_events = self._run_gc(220, seed)
        assert with_fast == without
        assert fast_events[0] <= slow_events[0]
        assert fast_events[1] <= slow_events[1]

    def test_cross_kernel_with_fastpath_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        monkeypatch.setenv("REPRO_ENGINE", "bucket")
        bucket = self._run_gc(150, 1)
        monkeypatch.setenv("REPRO_ENGINE", "heapq")
        heapq_run = self._run_gc(150, 1)
        assert bucket == heapq_run
