#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every experiment, record paper-vs-measured.

Run:  python benchmarks/generate_experiments_md.py [output-path] [--jobs N]

Thin wrapper over ``python -m repro run-all``; the suite definition lives
in ``repro.harness.suite`` and the parallel runner in
``repro.harness.parallel``. Takes ~10-20 minutes serially at the default
scales; pass ``--jobs N`` (or use the CLI directly) to fan experiments out
across worker processes.
"""

import argparse

from repro.harness.parallel import run_suite, write_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()
    runs = run_suite(jobs=args.jobs, progress=lambda msg: print(msg, flush=True))
    write_report(runs, args.out)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
