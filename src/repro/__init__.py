"""Reproduction of *A Hardware Accelerator for Tracing Garbage Collection*
(Maas, Asanović, Kubiatowicz — ISCA 2018).

This package provides a cycle-approximate, event-driven simulation of the
paper's full system:

* :mod:`repro.engine` — the discrete-event simulation kernel.
* :mod:`repro.memory` — DDR3/pipe memory models, caches, TLBs, page tables.
* :mod:`repro.heap` — a JikesRVM-style managed heap (segregated free lists,
  bidirectional object layout, spaces).
* :mod:`repro.workloads` — DaCapo-like synthetic heap profiles and mutators.
* :mod:`repro.swgc` — the software Mark & Sweep baseline on an in-order CPU.
* :mod:`repro.core` — the GC accelerator (traversal + reclamation units).
* :mod:`repro.power` — area and energy models.
* :mod:`repro.harness` — experiment runners for every figure in the paper.

Quickstart::

    from repro.harness import run_gc_comparison
    from repro.workloads import DACAPO_PROFILES

    result = run_gc_comparison(DACAPO_PROFILES["avrora"], scale=0.05, seed=1)
    print(result.summary())
"""

from repro._version import __version__

__all__ = ["__version__"]
