"""Shared fixtures for the fleet battery: per-test cache isolation."""

import pytest

from repro.fleet.timeline import reset_base_cache
from repro.harness import heapcache


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    monkeypatch.delenv("REPRO_HEAP_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
    heapcache.reset_cache()
    reset_base_cache()
    yield
    heapcache.reset_cache()
    reset_base_cache()
