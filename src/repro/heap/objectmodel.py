"""Typed view over an object in the simulated heap.

:class:`ObjectView` wraps an object reference (the virtual address of its
status word under the bidirectional layout) and exposes the fields the
collectors manipulate. Used by the graph generators, the mutator model, and
the verification code in tests; the collectors themselves read memory
directly, as the hardware does.
"""

from __future__ import annotations

from typing import List

from repro.heap.header import (
    MARK_BIT,
    TAG_BIT,
    decode_refcount,
    header_is_marked,
)
from repro.heap.layout import BidirectionalLayout
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory


class ObjectView:
    """Accessor for one bidirectional-layout object.

    When a :class:`~repro.heap.metadata.HeapMetadata` sidecar is attached
    (``meta``/``_slot``), the layout-derived accessors — ``n_refs``,
    ``is_array``, ``ref_paddr``, ``get_ref``, ``set_ref``, ``refs`` — read
    the sidecar's flat arrays instead of decoding the status word from
    memory on every call. Mark-bit accessors always read live memory: mark
    state is mutable, and the sidecar only caches immutable layout.
    """

    __slots__ = ("mem", "addr", "virt_offset", "meta", "_slot")

    def __init__(self, mem: PhysicalMemory, addr: int, virt_offset: int,
                 meta=None):
        self.mem = mem
        self.addr = addr  # virtual address of the status word
        self.virt_offset = virt_offset
        self.meta = meta
        self._slot = meta.index.get(addr) if meta is not None else None

    def attach_meta(self, meta) -> "ObjectView":
        """Bind a metadata sidecar; a no-op slot if ``addr`` is untracked."""
        self.meta = meta
        self._slot = meta.index.get(self.addr) if meta is not None else None
        return self

    # -- address translation ------------------------------------------------

    @property
    def status_paddr(self) -> int:
        return self.addr - self.virt_offset

    # -- header ------------------------------------------------------------

    @property
    def status_word(self) -> int:
        return self.mem.read_word(self.status_paddr)

    @property
    def n_refs(self) -> int:
        i = self._slot
        if i is not None:
            return self.meta.n_refs[i]
        return decode_refcount(self.status_word)[0]

    @property
    def is_array(self) -> bool:
        i = self._slot
        if i is not None:
            return self.meta.is_array[i]
        return decode_refcount(self.status_word)[1]

    @property
    def is_live_cell(self) -> bool:
        return bool(self.status_word & TAG_BIT)

    def is_marked(self, parity: int) -> bool:
        return header_is_marked(self.status_word, parity)

    @property
    def mark_bit(self) -> int:
        return 1 if self.status_word & MARK_BIT else 0

    # -- reference fields -----------------------------------------------------

    def ref_paddr(self, index: int) -> int:
        i = self._slot
        if i is not None:
            meta = self.meta
            if not 0 <= index < meta.n_refs[i]:
                raise IndexError(f"ref index {index} out of {meta.n_refs[i]}")
            return (meta.ref_base_index[i] + index) * WORD_BYTES
        vaddr = BidirectionalLayout.ref_field_addr(self.addr, self.n_refs, index)
        return vaddr - self.virt_offset

    def get_ref(self, index: int) -> int:
        """Read reference field ``index`` (0 means null)."""
        i = self._slot
        if i is not None:
            meta = self.meta
            if not 0 <= index < meta.n_refs[i]:
                raise IndexError(f"ref index {index} out of {meta.n_refs[i]}")
            return int(self.mem.words[meta.ref_base_index[i] + index])
        return self.mem.read_word(self.ref_paddr(index))

    def set_ref(self, index: int, target_vaddr: int) -> None:
        """Write reference field ``index``; ``0`` stores null."""
        i = self._slot
        if i is not None:
            meta = self.meta
            if not 0 <= index < meta.n_refs[i]:
                raise IndexError(f"ref index {index} out of {meta.n_refs[i]}")
            word_index = meta.ref_base_index[i] + index
            self.mem.words[word_index] = target_vaddr & 0xFFFFFFFFFFFFFFFF
            self.mem.note_dirty(word_index)
            return
        self.mem.write_word(self.ref_paddr(index), target_vaddr)

    def refs(self) -> List[int]:
        """All non-null outgoing references."""
        i = self._slot
        if i is not None:
            meta = self.meta
            n = meta.n_refs[i]
            if n == 0:
                return []
            base = meta.ref_base_index[i]
            return [int(w) for w in self.mem.words[base:base + n] if w]
        n = self.n_refs
        if n == 0:
            return []
        start_paddr = self.status_paddr - WORD_BYTES * n
        return [w for w in self.mem.read_words(start_paddr, n) if w != 0]

    # -- payload ---------------------------------------------------------------

    def payload_paddr(self, index: int) -> int:
        return self.status_paddr + WORD_BYTES * (1 + index)

    def get_payload(self, index: int) -> int:
        return self.mem.read_word(self.payload_paddr(index))

    def set_payload(self, index: int, value: int) -> None:
        self.mem.write_word(self.payload_paddr(index), value)

    def __repr__(self) -> str:
        return (
            f"ObjectView({self.addr:#x}, refs={self.n_refs}, "
            f"array={self.is_array}, mark={self.mark_bit})"
        )
