"""Event-driven simulator core with generator-based processes.

Time is an integer number of *cycles*. The simulated SoC runs at 1 GHz
(paper Table I), so one cycle is one nanosecond; the harness converts cycle
counts to milliseconds when reporting paper-style numbers.

Processes are Python generators that ``yield``:

* an ``int`` or :class:`Delay` — resume after that many cycles;
* an :class:`Event` — resume when the event triggers (receiving its value);
* a :class:`Completion` — a pre-resolved wait handle (fast-path hits);
* another :class:`Process` — resume when that process finishes (a *join*).

Sub-routines that follow the same protocol are invoked with ``yield from``.

Two interchangeable kernels implement the event queue:

* :class:`BucketSimulator` (the default) — a calendar/bucket queue tuned for
  the short fixed latencies that dominate this simulation (DRAM timings,
  cache hit latencies). Each occupied cycle owns one FIFO bucket; only the
  *distinct* busy cycles go through a priority queue (a heap of plain
  ints), so events sharing a cycle cost a dict lookup plus a list append —
  no comparisons, no tuple construction, no sequence counter. Zero-delay
  events (event triggers, same-cycle handshakes) append to the bucket
  currently being drained, so they run this cycle without ever touching
  the priority queue.
* :class:`HeapqSimulator` — the original ``heapq`` kernel, kept as a
  reference implementation for determinism cross-checks.
* :class:`VectorSimulator` — the array-batched kernel: per-cycle event
  state lives in flat interleaved columns (callback, args, callback,
  args, ...) instead of per-event pair tuples, and the run loops
  batch-advance a whole epoch — every completion scheduled for the
  current cycle — in one zip-paired pass over the columns.

All kernels process same-cycle events in strict scheduling order (a stable
FIFO within a cycle), so they produce *identical* simulations. Select the
kernel with the ``REPRO_ENGINE`` environment variable (``bucket``,
``heapq``, or ``vector``); instantiating :class:`Simulator` dispatches to
the configured kernel.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for protocol violations inside the simulation kernel."""


class StallReport(SimulationError):
    """A diagnosed stall: the event queue drained (or progress ceased) with
    a wait still outstanding.

    Subclasses :class:`SimulationError` so existing ``except`` clauses and
    tests matching ``"deadlock"`` keep working; the message gains a
    diagnosis naming the culprit component, its oldest outstanding request,
    and queue occupancies when a :class:`~repro.engine.watchdog.GCWatchdog`
    is attached.
    """

    def __init__(self, message: str, *, cycle: int = 0,
                 waiting_for: str = "", culprit: str = "",
                 oldest_request: str = "", occupancies=None,
                 faults=None):
        super().__init__(message)
        self.cycle = cycle
        self.waiting_for = waiting_for
        #: Component name the diagnosis blames ("" when undiagnosed).
        self.culprit = culprit
        #: Human-readable oldest outstanding request ("" if none).
        self.oldest_request = oldest_request
        #: Mapping of queue/component name -> occupancy at stall time.
        self.occupancies = dict(occupancies or {})
        #: Injected faults that had fired by the stall (FiredFault list).
        self.faults = list(faults or [])


def fastpath_enabled() -> bool:
    """Whether inline :class:`Completion` fast paths are enabled.

    Controlled by ``REPRO_FASTPATH`` (default on; ``0``/``off``/``no``/
    ``false`` disable it). Components read this once at construction, so
    flipping the variable affects newly built memory systems only — which
    is exactly what the on/off identity tests rely on.
    """
    raw = os.environ.get("REPRO_FASTPATH", "1").strip().lower()
    return raw not in ("0", "off", "no", "false")


class Delay:
    """Explicit delay request; ``yield Delay(n)`` is equivalent to ``yield n``."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise SimulationError(f"negative delay: {cycles}")
        self.cycles = int(cycles)

    def __repr__(self) -> str:
        return f"Delay({self.cycles})"


class Event:
    """A one-shot event that processes can wait on.

    An event starts untriggered. :meth:`trigger` fires it with an optional
    value; all current and future waiters are resumed with that value.
    Triggering twice is an error (hardware handshakes are one-shot).
    """

    __slots__ = ("sim", "triggered", "value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        # Created lazily on first waiter: most events (cache fills, queue
        # handshakes) trigger with zero or one waiter.
        self._waiters: Optional[List[Callable[[Any], None]]] = None
        self.name = name

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters in this same cycle."""
        if self.triggered:
            raise SimulationError(f"event {self.name or id(self)} triggered twice")
        self.triggered = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = None
            schedule = self.sim.schedule
            for callback in waiters:
                schedule(0, callback, value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires (immediately if fired)."""
        if self.triggered:
            self.sim.schedule(0, callback, self.value)
        elif self._waiters is None:
            self._waiters = [callback]
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:
        state = "fired" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Completion:
    """A pre-resolved wait handle: the value is known at creation time and
    becomes observable at absolute cycle ``time``.

    This is the fast-path substitute for the ``Event`` + ``schedule(latency,
    event.trigger, value)`` idiom used when a component already knows both
    the result and the latency at submit time (cache hits, TLB hits, pipe
    transfers). Creating one performs **no** scheduling; a waiter that
    yields it either consumes it synchronously (``time <= now``) or costs a
    single bucket append for the remaining delay — versus the slow path's
    two queue insertions (the deferred ``trigger`` plus the waiter wakeup
    it schedules).

    The protocol mirrors the waited-on half of :class:`Event`: ``triggered``
    (computed from the clock, so handles held across cycles — e.g. store
    buffer entries — observe the same transition the Event would make),
    ``value``, and ``add_callback``. It cannot be triggered; it already was.

    Delivery of a *pending* completion is **hop-preserving**: the waiter is
    woken through ``schedule(delay, _deliver)`` followed by the same
    zero-delay hop ``Event.trigger`` performs, so it lands at the same
    intra-cycle bucket position as the legacy ``schedule(latency,
    event.trigger)`` idiom. That is what keeps same-cycle arbitration (and
    therefore cycle counts and trace digests) bit-identical to the
    event-based slow path; a direct single-append delivery measurably
    reorders DRAM scheduling decisions.
    """

    __slots__ = ("sim", "time", "value")

    def __init__(self, sim: "Simulator", time: int, value: Any = None):
        self.sim = sim
        self.time = time
        self.value = value

    @property
    def triggered(self) -> bool:
        return self.sim.now >= self.time

    def _deliver(self, callback: Callable[[Any], None]) -> None:
        self.sim.schedule(0, callback, self.value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` at ``time`` (this cycle if past)."""
        sim = self.sim
        delay = self.time - sim.now
        if delay <= 0:
            sim.schedule(0, callback, self.value)
        else:
            sim.schedule(delay, self._deliver, callback)

    def __repr__(self) -> str:
        state = "ready" if self.triggered else f"at {self.time}"
        return f"Completion({state}, value={self.value!r})"


class Process(Event):
    """A running generator coroutine. Doubles as its own completion event.

    The completion event's value is the generator's return value
    (``StopIteration.value``).
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name=name)
        self._gen = gen
        sim.schedule(0, self._step, None)

    def _step(self, value: Any) -> None:
        # Fast path: consume already-triggered events (e.g. TLB hits)
        # synchronously instead of bouncing through the event queue.
        send = self._gen.send
        sim = self.sim
        while True:
            try:
                item = send(value)
            except StopIteration as stop:
                self.trigger(stop.value)
                return
            cls = item.__class__
            if cls is int:
                if item == 0:
                    value = None
                    continue
                sim.schedule(item, self._step, None)
                return
            if cls is Completion:
                # Ready completions are consumed synchronously (like an
                # already-triggered Event); pending ones resume through the
                # hop-preserving delivery so intra-cycle ordering matches
                # the event-based slow path exactly.
                remaining = item.time - sim.now
                if remaining <= 0:
                    value = item.value
                    continue
                sim.schedule(remaining, item._deliver, self._step)
                return
            if isinstance(item, Event):
                if item.triggered:
                    value = item.value
                    continue
                item.add_callback(self._step)
                return
            if cls is Delay:
                sim.schedule(item.cycles, self._step, None)
                return
            raise SimulationError(
                f"process {self.name!r} yielded unsupported item {item!r}"
            )


class Simulator:
    """The event queue and clock (facade over the configured kernel).

    ``Simulator()`` instantiates the kernel selected by the ``REPRO_ENGINE``
    environment variable (``bucket``, the default, ``heapq``, or
    ``vector``); all subclasses share this public API. Events scheduled for
    the same cycle run in scheduling order (a stable FIFO within a cycle),
    which keeps hardware handshakes deterministic — and makes every kernel
    produce bit-identical simulations.
    """

    now: int
    events_processed: int

    #: Optional stall diagnostician (a
    #: :class:`~repro.engine.watchdog.GCWatchdog`). Class-level ``None``
    #: keeps the undiagnosed path zero-cost: a drained queue does one
    #: attribute load and a ``None`` check before raising, and nothing on
    #: the hot event loop ever touches it.
    diagnostics = None

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        if cls is Simulator:
            engine = os.environ.get("REPRO_ENGINE", "bucket").strip().lower()
            impl = ENGINES.get(engine)
            if impl is None:
                raise SimulationError(
                    f"unknown REPRO_ENGINE {engine!r}; "
                    f"expected one of {sorted(ENGINES)}"
                )
            return object.__new__(impl)
        return object.__new__(cls)

    # -- shared helpers ----------------------------------------------------

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` ``delay`` cycles from now."""
        raise NotImplementedError

    def at(self, time: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute cycle ``time``."""
        self.schedule(time - self.now, callback, *args)

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event bound to this simulator."""
        return Event(self, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, gen, name=name)

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue is empty, ``until`` cycles, or ``max_events``.

        Returns the final simulation time. If ``until`` is given, the clock is
        advanced to exactly ``until`` even if the queue drains earlier.
        """
        raise NotImplementedError

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains first (deadlock).
        """
        raise NotImplementedError

    def _stall(self, event: Event) -> StallReport:
        """Build the exception for a drained queue with ``event`` pending.

        The one diagnostic site shared by both kernels (and their budgeted
        variants). Keeps the historical ``deadlock: event queue empty``
        message as the prefix; when a watchdog is attached as
        :attr:`diagnostics` it appends the culprit diagnosis.
        """
        message = (f"deadlock: event queue empty at cycle {self.now} "
                   f"while waiting for {event!r}")
        diagnostics = self.diagnostics
        if diagnostics is not None:
            return diagnostics.diagnose(self, event, message)
        return StallReport(message, cycle=self.now, waiting_for=repr(event))

    def discard_pending(self) -> int:
        """Drop every scheduled event; returns how many were discarded.

        Used by the driver's safety net when abandoning a wedged hardware
        collection: residual callbacks from the dead unit must never fire
        into the restored heap.
        """
        raise NotImplementedError

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(now={self.now}, "
            f"pending={self.pending_events})"
        )


class BucketSimulator(Simulator):
    """Calendar-queue kernel: one FIFO bucket per occupied cycle.

    Buckets live in a dict keyed by absolute time; a heap of plain ints
    orders only the *distinct* occupied cycles. Scheduling into a busy
    cycle is a dict lookup plus a list append (no comparisons, no tuple
    construction); the heap is touched once per cycle, not once per event,
    and its int comparisons are far cheaper than the ``(time, seq, ...)``
    tuple comparisons of the heapq kernel. Draining iterates the bucket
    with the C-level list iterator, which picks up entries appended
    mid-drain — that is the zero-delay fast path: triggers and same-cycle
    handshakes run this cycle without ever touching the priority queue.

    Invariants: ``_times`` holds exactly the keys of ``_buckets`` (each
    once), and every bucket's time is ``>= now``.
    """

    def __init__(self) -> None:
        self.now = 0
        self.events_processed = 0
        self._buckets: dict = {}
        self._times: List[int] = []

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` ``delay`` cycles from now."""
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is not None:
            bucket.append((callback, args))
        elif delay >= 0:
            self._buckets[time] = [(callback, args)]
            heapq.heappush(self._times, time)
        else:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")

    @property
    def pending_events(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def discard_pending(self) -> int:
        dropped = self.pending_events
        self._buckets.clear()
        self._times.clear()
        return dropped

    def _retire(self, time: int, bucket: list, executed: int) -> None:
        """Account for a partial drain and keep the remainder queued."""
        del bucket[:executed]
        self.events_processed += executed
        if bucket:
            heapq.heappush(self._times, time)
        else:
            del self._buckets[time]

    # -- run loops ---------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        if until is not None and self.now > until:
            return self.now
        if max_events is not None:
            self._run_budgeted(until, max_events)
        else:
            # Unbudgeted hot loop: no per-event bookkeeping at all.
            buckets, times = self._buckets, self._times
            pop = heapq.heappop
            while times:
                time = times[0]
                if until is not None and time > until:
                    break
                pop(times)
                self.now = time
                bucket = buckets[time]
                i = -1
                try:
                    for i, (callback, args) in enumerate(bucket):
                        callback(*args)
                except BaseException:
                    # Parity with heapq: the failing event was dequeued but
                    # not counted; later same-cycle events stay queued.
                    self._retire(time, bucket, i + 1)
                    self.events_processed -= 1
                    raise
                self.events_processed += len(bucket)
                del buckets[time]
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def _run_budgeted(self, until: Optional[int], max_events: int) -> None:
        budget = max_events
        buckets, times = self._buckets, self._times
        while times and budget > 0:
            time = times[0]
            if until is not None and time > until:
                return
            heapq.heappop(times)
            self.now = time
            bucket = buckets[time]
            i = 0
            try:
                while i < len(bucket) and budget > 0:
                    callback, args = bucket[i]
                    i += 1
                    budget -= 1
                    callback(*args)
            finally:
                self._retire(time, bucket, i)
        if budget <= 0 and self._times:
            raise SimulationError(
                f"max_events={max_events} exhausted at cycle {self.now}; "
                "simulation is likely livelocked"
            )

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        if max_events is not None:
            return self._run_until_budgeted(event, max_events)
        buckets, times = self._buckets, self._times
        pop = heapq.heappop
        while not event.triggered:
            if not times:
                raise self._stall(event)
            time = pop(times)
            self.now = time
            bucket = buckets[time]
            i = -1
            try:
                for i, (callback, args) in enumerate(bucket):
                    if event.triggered:
                        self._retire(time, bucket, i)
                        return event.value
                    callback(*args)
            except BaseException:
                self._retire(time, bucket, i + 1)
                self.events_processed -= 1
                raise
            self.events_processed += len(bucket)
            del buckets[time]
        return event.value

    def _run_until_budgeted(self, event: Event, max_events: int) -> Any:
        budget = max_events
        buckets, times = self._buckets, self._times
        while not event.triggered:
            if not times:
                raise self._stall(event)
            time = heapq.heappop(times)
            self.now = time
            bucket = buckets[time]
            i = 0
            try:
                while i < len(bucket):
                    if event.triggered:
                        break
                    if budget <= 0:
                        raise SimulationError(
                            f"max_events={max_events} exhausted at "
                            f"cycle {self.now}"
                        )
                    budget -= 1
                    callback, args = bucket[i]
                    i += 1
                    callback(*args)
            finally:
                self._retire(time, bucket, i)
        return event.value


class HeapqSimulator(Simulator):
    """The original global-``heapq`` kernel (determinism reference).

    Kept selectable via ``REPRO_ENGINE=heapq`` so the bucket kernel can be
    cross-checked: both must produce identical cycle counts and
    ``events_processed`` for the same workload.
    """

    def __init__(self) -> None:
        self.now = 0
        self._queue: List[Tuple[int, int, Callable, tuple]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback, args))

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def discard_pending(self) -> int:
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        queue = self._queue
        if max_events is None:
            # Unbudgeted hot loop: no per-event budget bookkeeping. The
            # heappop and the processed counter are hoisted to locals; the
            # counter is written back even when a callback raises so the
            # exception-path accounting matches the budgeted loop.
            pop = heapq.heappop
            processed = self.events_processed
            try:
                while queue:
                    time = queue[0][0]
                    if until is not None and time > until:
                        break
                    _time, _seq, callback, args = pop(queue)
                    self.now = time
                    callback(*args)
                    processed += 1
            finally:
                self.events_processed = processed
        else:
            budget = max_events
            while queue and budget > 0:
                time = queue[0][0]
                if until is not None and time > until:
                    break
                _time, _seq, callback, args = heapq.heappop(queue)
                self.now = time
                callback(*args)
                self.events_processed += 1
                budget -= 1
            if budget <= 0 and queue:
                raise SimulationError(
                    f"max_events={max_events} exhausted at cycle {self.now}; "
                    "simulation is likely livelocked"
                )
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        budget = max_events
        queue = self._queue
        pop = heapq.heappop
        processed = self.events_processed
        try:
            while not event.triggered:
                if not queue:
                    raise self._stall(event)
                if budget is not None:
                    if budget <= 0:
                        raise SimulationError(
                            f"max_events={max_events} exhausted at "
                            f"cycle {self.now}"
                        )
                    budget -= 1
                time, _seq, callback, args = pop(queue)
                self.now = time
                callback(*args)
                processed += 1
        finally:
            self.events_processed = processed
        return event.value


class VectorSimulator(Simulator):
    """Array-batched kernel: interleaved event columns, epoch batch drain.

    Where :class:`BucketSimulator` stores one ``(callback, args)`` pair
    tuple per event, this kernel stores each cycle's events as a single
    flat column ``[cb0, args0, cb1, args1, ...]``: scheduling into a busy
    cycle is two list appends with **no** per-event tuple allocation, and
    handles into the column are plain integer offsets (the exception and
    ``run_until`` partial-drain paths slice by item index, not by entry).

    The run loops advance one *epoch* — every completion scheduled for the
    current cycle — per heap pop: ``zip(it, it)`` over the column's list
    iterator re-pairs callback and args at C speed and dispatches them in
    one pass. The dispatch "handler table" is the callback column itself:
    each slot holds the pre-bound handler for that completion's type
    (``Process._step`` for coroutine resumes, ``Event.trigger`` for
    deferred handshakes, ``Completion._deliver`` for fast-path handles,
    ``DRAMController._pump`` for scheduler wakeups), so batch dispatch is
    one indirect call per event with zero re-dispatch logic.

    Mid-epoch appends land on the live column and are picked up by the
    same iterator — the zero-delay fast path, identical to the bucket
    kernel's — which is what keeps intra-cycle FIFO order, and therefore
    cycle counts and trace digests, bit-identical to the other kernels.

    Invariants: ``_times`` holds exactly the keys of ``_buckets`` (each
    once), every column's time is ``>= now``, and every column holds an
    even number of items (callback/args interleaving is never torn:
    ``schedule`` appends both or neither, and the drains consume pairs).
    """

    def __init__(self) -> None:
        self.now = 0
        self.events_processed = 0
        self._buckets: dict = {}
        self._times: List[int] = []

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` ``delay`` cycles from now."""
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is not None:
            bucket.append(callback)
            bucket.append(args)
        elif delay >= 0:
            self._buckets[time] = [callback, args]
            heapq.heappush(self._times, time)
        else:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")

    @property
    def pending_events(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values()) // 2

    def discard_pending(self) -> int:
        dropped = self.pending_events
        self._buckets.clear()
        self._times.clear()
        return dropped

    def _retire(self, time: int, bucket: list, consumed: int) -> None:
        """Account for a partial drain (``consumed`` column *items*, i.e.
        ``2 *`` events) and keep the remainder queued."""
        del bucket[:consumed]
        self.events_processed += consumed // 2
        if bucket:
            heapq.heappush(self._times, time)
        else:
            del self._buckets[time]

    def _requeue_rest(self, time: int, bucket: list, rest: list,
                      head: Optional[tuple]) -> int:
        """Replace a partially zip-drained column with its unexecuted tail.

        ``rest`` is what the column iterator had not yet consumed; ``head``
        is the already-consumed-but-unexecuted current pair (``run_until``
        stopping on a trigger), or ``None`` when the current pair executed
        and failed (exception parity: dequeued but not counted). Returns
        the number of *executed* events, matching the bucket kernel's
        ``_retire`` accounting exactly.
        """
        executed = (len(bucket) - len(rest)) // 2 - 1
        if head is not None:
            rest[:0] = head
        if rest:
            self._buckets[time] = rest
            heapq.heappush(self._times, time)
        else:
            del self._buckets[time]
        return executed

    # -- run loops ---------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        if until is not None and self.now > until:
            return self.now
        if max_events is not None:
            self._run_budgeted(until, max_events)
        else:
            # Unbudgeted hot loop: one epoch per heap pop, no per-event
            # bookkeeping — the zip pairs the columns at C speed.
            buckets, times = self._buckets, self._times
            pop = heapq.heappop
            while times:
                time = times[0]
                if until is not None and time > until:
                    break
                pop(times)
                self.now = time
                bucket = buckets[time]
                it = iter(bucket)
                try:
                    for callback, args in zip(it, it):
                        callback(*args)
                except BaseException:
                    # Parity with bucket/heapq: the failing event was
                    # dequeued but not counted; later same-cycle events
                    # stay queued.
                    self.events_processed += self._requeue_rest(
                        time, bucket, list(it), None)
                    raise
                self.events_processed += len(bucket) // 2
                del buckets[time]
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def _run_budgeted(self, until: Optional[int], max_events: int) -> None:
        budget = max_events
        buckets, times = self._buckets, self._times
        while times and budget > 0:
            time = times[0]
            if until is not None and time > until:
                return
            heapq.heappop(times)
            self.now = time
            bucket = buckets[time]
            i = 0
            try:
                while i < len(bucket) and budget > 0:
                    callback = bucket[i]
                    args = bucket[i + 1]
                    i += 2
                    budget -= 1
                    callback(*args)
            finally:
                self._retire(time, bucket, i)
        if budget <= 0 and self._times:
            raise SimulationError(
                f"max_events={max_events} exhausted at cycle {self.now}; "
                "simulation is likely livelocked"
            )

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        if max_events is not None:
            return self._run_until_budgeted(event, max_events)
        buckets, times = self._buckets, self._times
        pop = heapq.heappop
        while not event.triggered:
            if not times:
                raise self._stall(event)
            time = pop(times)
            self.now = time
            bucket = buckets[time]
            it = iter(bucket)
            try:
                for callback, args in zip(it, it):
                    if event.triggered:
                        # The current pair has not executed: requeue it at
                        # the head of the remainder (same stop point as the
                        # bucket kernel's index-based retire).
                        self.events_processed += self._requeue_rest(
                            time, bucket, list(it), (callback, args))
                        return event.value
                    callback(*args)
            except BaseException:
                self.events_processed += self._requeue_rest(
                    time, bucket, list(it), None)
                raise
            self.events_processed += len(bucket) // 2
            del buckets[time]
        return event.value

    def _run_until_budgeted(self, event: Event, max_events: int) -> Any:
        budget = max_events
        buckets, times = self._buckets, self._times
        while not event.triggered:
            if not times:
                raise self._stall(event)
            time = heapq.heappop(times)
            self.now = time
            bucket = buckets[time]
            i = 0
            try:
                while i < len(bucket):
                    if event.triggered:
                        break
                    if budget <= 0:
                        raise SimulationError(
                            f"max_events={max_events} exhausted at "
                            f"cycle {self.now}"
                        )
                    budget -= 1
                    callback = bucket[i]
                    args = bucket[i + 1]
                    i += 2
                    callback(*args)
            finally:
                self._retire(time, bucket, i)
        return event.value


#: Kernel registry for the ``REPRO_ENGINE`` environment variable. Growing
#: it automatically grows the unknown-engine error message (``Simulator``
#: formats ``sorted(ENGINES)`` at raise time), so a new kernel never ships
#: with a stale kernel list in the diagnostic.
ENGINES = {
    "bucket": BucketSimulator,
    "heapq": HeapqSimulator,
    "vector": VectorSimulator,
}
