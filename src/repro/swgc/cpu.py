"""In-order CPU timing model (Rocket-like, Table I).

The model exposes the operations a compiled GC loop performs — ``exec``
(ALU/control work), ``load``, ``store``, ``amo``, ``branch`` — as generator
sub-routines that GC algorithms invoke with ``yield from``. Loads and AMOs
are *blocking* (an in-order core stalls on use, which for a pointer-chasing
loop is immediately); stores retire through a small store buffer and only
stall when it fills; branches pay a pipeline-refill penalty when
mispredicted.

The paper justifies the in-order baseline: "A preliminary analysis of
running heap snapshots on ... BOOM out-of-order core ... showed that it
outperformed Rocket by only around 12% on average" (§VI). The optional
``miss_overlap`` knob lets the ablation benches approximate that modest
out-of-order benefit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Deque, Optional

from repro.engine.simulator import Completion, Event, Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.cache import Cache
from repro.memory.config import CacheConfig, TLBConfig
from repro.memory.interconnect import MemorySystem
from repro.memory.ptw import PageTableWalker
from repro.memory.request import AccessKind, MemRequest
from repro.memory.tlb import TLB


@dataclass
class CPUConfig:
    """Rocket-like core and cache-hierarchy parameters (Table I)."""

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, ways=4, hit_latency=2, mshrs=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, ways=8, hit_latency=20, mshrs=8
        )
    )
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=32))
    branch_mispredict_penalty: int = 3
    store_buffer_entries: int = 8
    #: 1 = fully blocking in-order core. The BOOM-style ablation raises this.
    miss_overlap: int = 1


class InOrderCPU:
    """Executes GC-algorithm operation streams with Rocket-like timing."""

    def __init__(
        self,
        sim: Simulator,
        memsys: MemorySystem,
        config: Optional[CPUConfig] = None,
        source: str = "cpu",
    ):
        self.sim = sim
        self.memsys = memsys
        self.config = config if config is not None else CPUConfig()
        self.source = source
        self.stats: StatsRegistry = memsys.stats
        self.l2 = Cache(sim, self.config.l2, memsys.model, name="l2",
                        stats=self.stats)
        self.l1d = Cache(sim, self.config.l1d, self.l2, name="l1d",
                         stats=self.stats)
        # Rocket's PTW refills through the L1 data cache.
        self.ptw = PageTableWalker(
            sim, memsys.page_table, self.l1d, source=f"{source}.ptw",
            stats=self.stats,
        )
        self.dtlb = TLB(sim, self.config.dtlb, self.ptw, name=f"{source}.dtlb",
                        l2=None, stats=self.stats)
        self._store_buffer: Deque[Event] = deque()
        self.instructions = 0
        self._c_loads = self.stats.counter(f"cpu.{source}.loads")
        self._c_stores = self.stats.counter(f"cpu.{source}.stores")
        self._c_amos = self.stats.counter(f"cpu.{source}.amos")
        self._c_mispredicts = self.stats.counter(f"cpu.{source}.mispredicts")

    # -- operation sub-routines (invoke with ``yield from``) -----------------

    def exec_ops(self, n: int):
        """``n`` cycles of non-memory work (ALU, address gen, loop control)."""
        self.instructions += n
        yield n

    def load(self, vaddr: int, size: int = 8):
        """Blocking load: translate, access the hierarchy, stall until data."""
        res = self.load_op(vaddr, size)
        if res.__class__ is GeneratorType:
            yield from res
        else:
            yield res

    def amo(self, vaddr: int, size: int = 8):
        """Atomic read-modify-write; blocking like a load."""
        res = self.amo_op(vaddr, size)
        if res.__class__ is GeneratorType:
            yield from res
        else:
            yield res

    def store(self, vaddr: int, size: int = 8):
        """Store through the store buffer; stalls only when the buffer fills."""
        res = self.store_op(vaddr, size)
        if res.__class__ is GeneratorType:
            yield from res
        else:
            yield res

    # -- flattened operation handles -----------------------------------------
    #
    # The ``*_op`` forms return *one thing for the caller to yield* — a
    # memory handle (load/amo), an issue-slot int (store) — whenever the
    # translation resolves this cycle, which is the overwhelmingly common
    # case. That skips a generator allocation and a delegated send per
    # operation. When the TLB must wait (or a store stalls), they fall back
    # to a generator the caller drives with ``yield from``. Event-for-event
    # identical to the classic generator forms: a same-cycle translation
    # was consumed synchronously by the process send-loop there, producing
    # no kernel events — here it is simply never yielded.

    def load_op(self, vaddr: int, size: int = 8):
        """Blocking load as a single yieldable handle (or a generator)."""
        self.instructions += 1
        self._c_loads.value += 1
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "cpu", "load", vaddr))
        t = self.dtlb.translate(vaddr)
        if t.__class__ is Completion and t.time <= self.sim.now:
            return self.l1d.submit(MemRequest(
                addr=t.value, size=size, kind=AccessKind.READ,
                source=self.source))
        return self._mem_slow(t, size, AccessKind.READ)

    def amo_op(self, vaddr: int, size: int = 8):
        """Atomic read-modify-write as a single yieldable handle."""
        self.instructions += 1
        self._c_amos.value += 1
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "cpu", "amo", vaddr))
        t = self.dtlb.translate(vaddr)
        if t.__class__ is Completion and t.time <= self.sim.now:
            return self.l1d.submit(MemRequest(
                addr=t.value, size=size, kind=AccessKind.AMO,
                source=self.source))
        return self._mem_slow(t, size, AccessKind.AMO)

    def store_op(self, vaddr: int, size: int = 8):
        """Buffered store; returns the issue-slot ``1`` or a stall generator."""
        self.instructions += 1
        self._c_stores.value += 1
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "cpu", "store", vaddr))
        t = self.dtlb.translate(vaddr)
        if t.__class__ is Completion and t.time <= self.sim.now:
            buf = self._store_buffer
            buf.append(self.l1d.submit(MemRequest(
                addr=t.value, size=size, kind=AccessKind.WRITE,
                source=self.source)))
            if len(buf) <= self.config.store_buffer_entries:
                # Drop already-retired stores from the front.
                while buf and buf[0].triggered:
                    buf.popleft()
                return 1  # issue slot
            return self._store_stall()
        return self._store_slow(t, size)

    def _mem_slow(self, t, size: int, kind: AccessKind):
        paddr = yield t
        yield self.l1d.submit(MemRequest(addr=paddr, size=size, kind=kind,
                                         source=self.source))

    def _store_slow(self, t, size: int):
        paddr = yield t
        self._store_buffer.append(self.l1d.submit(MemRequest(
            addr=paddr, size=size, kind=AccessKind.WRITE, source=self.source)))
        yield from self._store_stall()

    def _store_stall(self):
        buf = self._store_buffer
        while len(buf) > self.config.store_buffer_entries:
            oldest = buf.popleft()
            if not oldest.triggered:
                yield oldest
        # Drop already-retired stores from the front.
        while buf and buf[0].triggered:
            buf.popleft()
        yield 1  # issue slot

    def branch(self, mispredicted: bool):
        """A conditional branch; mispredicts flush the short Rocket pipeline."""
        self.instructions += 1
        if mispredicted:
            self._c_mispredicts.value += 1
            yield self.config.branch_mispredict_penalty
        else:
            yield 1

    def drain_stores(self):
        """Wait for all buffered stores (end of a GC phase)."""
        while self._store_buffer:
            oldest = self._store_buffer.popleft()
            if not oldest.triggered:
                yield oldest
