"""The deterministic fault-injection plane (spec grammar + fire semantics)."""

import pytest

from repro.engine.faultplane import (
    CORRUPT_BIT,
    DEFAULT_DELAY_CYCLES,
    COMPONENTS,
    ENV_VAR,
    FaultPlane,
    HWFault,
    HWFaultSpecError,
    KINDS,
    parse_hwfault_spec,
    plane_from_env,
)
from repro.engine.stats import StatsRegistry
from repro.engine.trace import TraceBus


class TestSpecGrammar:
    def test_minimal_spec(self):
        plane = parse_hwfault_spec("drop:dram")
        assert len(plane.faults) == 1
        fault = plane.faults[0]
        assert (fault.kind, fault.component, fault.nth) == ("drop", "dram", 1)
        assert fault.at_cycle is None

    def test_nth_trigger(self):
        (fault,) = parse_hwfault_spec("corrupt:marker:7").faults
        assert fault.nth == 7

    def test_cycle_trigger(self):
        (fault,) = parse_hwfault_spec("stuck:sweeper:@12345").faults
        assert fault.at_cycle == 12345

    def test_multiple_faults(self):
        plane = parse_hwfault_spec("drop:dram:2, delay:tlb:@99")
        assert [f.component for f in plane.faults] == ["dram", "tlb"]

    def test_spec_roundtrip(self):
        for spec in ("drop:dram", "delay:tlb:3", "stuck:marker:@1000"):
            (fault,) = parse_hwfault_spec(spec).faults
            assert fault.spec() == spec if ":@" in spec or spec.count(":") == 2 \
                else fault.spec().startswith(spec)
            (again,) = parse_hwfault_spec(fault.spec()).faults
            assert again == fault

    @pytest.mark.parametrize("bad", [
        "explode:dram",          # unknown kind
        "drop:gpu",              # unknown component
        "drop",                  # missing component
        "drop:dram:0",           # nth must be >= 1
        "drop:dram:-3",          # negative count
        "drop:dram:@-5",         # negative cycle
        "drop:dram:x",           # non-numeric trigger
        "drop:dram:1:extra",     # too many fields
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(HWFaultSpecError):
            parse_hwfault_spec(bad)

    def test_env_unset_means_no_plane(self):
        assert plane_from_env(environ={}) is None
        assert plane_from_env(environ={ENV_VAR: "  "}) is None

    def test_env_set_builds_plane(self):
        plane = plane_from_env(environ={ENV_VAR: "delay:markqueue"})
        assert plane is not None
        assert plane.faults[0].component == "markqueue"

    def test_vocabulary_is_closed(self):
        assert set(KINDS) == {"drop", "delay", "corrupt", "stuck"}
        assert set(COMPONENTS) == {"dram", "tlb", "marker", "markqueue",
                                   "sweeper"}


class TestFireSemantics:
    def test_nth_op_fires_once(self):
        plane = parse_hwfault_spec("drop:dram:3")
        assert plane.fire("dram", 10) is None
        assert plane.fire("dram", 20) is None
        fault = plane.fire("dram", 30)
        assert fault is not None and fault.kind == "drop"
        # One-shot: consumed after firing.
        assert plane.fire("dram", 40) is None
        assert len(plane.fired) == 1
        assert plane.fired[0].cycle == 30 and plane.fired[0].op_index == 3

    def test_other_components_untouched(self):
        plane = parse_hwfault_spec("drop:dram")
        assert plane.fire("tlb", 5) is None
        assert plane.fire("dram", 6) is not None

    def test_cycle_trigger_fires_at_first_op_past_cycle(self):
        plane = parse_hwfault_spec("delay:tlb:@100")
        assert plane.fire("tlb", 99) is None
        fault = plane.fire("tlb", 100)
        assert fault is not None and fault.delay_cycles == DEFAULT_DELAY_CYCLES

    def test_kinds_filter(self):
        plane = parse_hwfault_spec("corrupt:markqueue")
        # A site that only admits stuck/delay never sees the corrupt fault.
        assert plane.fire("markqueue", 1, kinds=("stuck", "delay")) is None
        assert plane.fire("markqueue", 2, kinds=("drop", "corrupt")) is not None

    def test_stuck_latches(self):
        plane = parse_hwfault_spec("stuck:marker")
        assert not plane.is_stuck("marker")
        first = plane.fire("marker", 10)
        assert first is not None
        # Latched: every later op on the component keeps hitting the fault,
        # but only the first firing is recorded.
        assert plane.fire("marker", 11) is first
        assert plane.is_stuck("marker")
        assert not plane.is_stuck("dram")
        assert len(plane.fired) == 1

    def test_suspend_masks_everything(self):
        plane = parse_hwfault_spec("stuck:marker,drop:dram")
        plane.fire("marker", 1)
        plane.suspend()
        assert plane.fire("dram", 2) is None
        assert not plane.is_stuck("marker")
        plane.resume()
        assert plane.is_stuck("marker")

    def test_reset_rearms(self):
        plane = parse_hwfault_spec("drop:dram")
        assert plane.fire("dram", 1) is not None
        plane.reset()
        assert plane.fired == []
        assert plane.fire("dram", 2) is not None

    def test_bool(self):
        assert parse_hwfault_spec("drop:dram")
        assert not FaultPlane(faults=())


class TestInstrumentation:
    def test_install_exports_counters_and_trace(self):
        stats = StatsRegistry()
        stats.trace = TraceBus()
        plane = parse_hwfault_spec("drop:dram")
        plane.install(stats)
        assert stats.hwfaults is plane
        plane.fire("dram", 42)
        assert stats.get("hwfault.drop.dram") == 1
        assert (42, "fault", "drop", "dram", 1) in stats.trace.events
        plane.uninstall()
        assert stats.hwfaults is None

    def test_unfired_plane_emits_nothing(self):
        stats = StatsRegistry()
        stats.trace = TraceBus()
        plane = parse_hwfault_spec("drop:dram:999")
        plane.install(stats)
        plane.fire("dram", 1)
        assert stats.with_prefix("hwfault.") == {}
        assert len(stats.trace) == 0

    def test_corrupt_value_flips_the_poison_bit(self):
        assert FaultPlane.corrupt_value(0) == CORRUPT_BIT
        assert FaultPlane.corrupt_value(CORRUPT_BIT) == 0
