"""Experiment harness: one runner per figure in the paper's evaluation.

Every function in :mod:`repro.harness.experiments` regenerates one
table/figure of the paper (see DESIGN.md's experiment index); the
benchmark suite under ``benchmarks/`` is a thin pytest-benchmark wrapper
around these runners, and ``EXPERIMENTS.md`` records paper-vs-measured for
each.
"""

from repro.harness.runners import (
    GCComparison,
    build_heap,
    run_gc_comparison,
    run_hardware,
    run_software,
)
from repro.harness import experiments
from repro.harness.reporting import render_table, render_series

__all__ = [
    "GCComparison",
    "build_heap",
    "run_software",
    "run_hardware",
    "run_gc_comparison",
    "experiments",
    "render_table",
    "render_series",
]
