"""Area model (Fig. 22)."""

import pytest

from repro.core.config import GCUnitConfig
from repro.power.area import AreaModel


@pytest.fixture
def model():
    return AreaModel()


class TestHeadlineNumbers:
    def test_unit_is_about_18_5_percent_of_rocket(self, model):
        """The paper's headline: 18.5% of the Rocket CPU."""
        assert model.unit_to_rocket_ratio() == pytest.approx(0.185, abs=0.02)

    def test_unit_is_about_64kb_of_sram(self, model):
        assert model.sram_equivalent_kb() == pytest.approx(64, abs=6)

    def test_mark_queue_dominates_the_unit(self, model):
        breakdown = model.unit_breakdown()
        assert breakdown["Mark Q."] == max(breakdown.values())

    def test_rocket_is_a_small_cpu(self, model):
        # Fig. 22a: the 256 KB L2 dwarfs both Rocket and the unit.
        totals = model.totals()
        assert totals["L2 Cache"] > totals["Rocket"] > totals["HWGC"]


class TestParametricScaling:
    def test_bigger_queue_costs_area(self, model):
        small = model.unit_total(GCUnitConfig(mark_queue_entries=256))
        big = model.unit_total(GCUnitConfig(mark_queue_entries=4096))
        assert big > small

    def test_compression_halves_queue_area(self, model):
        wide = model.unit_breakdown(GCUnitConfig())["Mark Q."]
        narrow = model.unit_breakdown(
            GCUnitConfig(address_compression=True))["Mark Q."]
        assert narrow < 0.6 * wide

    def test_sweepers_scale_linearly(self, model):
        one = model.unit_breakdown(GCUnitConfig(n_sweepers=1))["Sweeper"]
        four = model.unit_breakdown(GCUnitConfig(n_sweepers=4))["Sweeper"]
        assert four == pytest.approx(4 * one)

    def test_mark_bit_cache_adds_marker_area(self, model):
        without = model.unit_breakdown(GCUnitConfig())["Marker"]
        with_mbc = model.unit_breakdown(
            GCUnitConfig(mark_bit_cache_entries=256))["Marker"]
        assert with_mbc > without

    def test_shared_cache_mode_counts_the_shared_l1(self, model):
        shared = model.unit_breakdown(GCUnitConfig(cache_mode="shared"))
        part = model.unit_breakdown(GCUnitConfig())
        assert shared["PTW"] > part["PTW"]  # 16 KB beats 8 KB

    def test_rocket_breakdown_sums(self, model):
        assert sum(model.rocket_breakdown().values()) == \
            pytest.approx(model.rocket_total())
