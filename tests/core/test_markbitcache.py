"""Mark-bit cache (recently-marked filter)."""

from repro.core.markbitcache import MarkBitCache


class TestDisabled:
    def test_zero_entries_never_hits(self):
        cache = MarkBitCache(0)
        cache.insert(0x100)
        assert not cache.contains(0x100)
        assert not cache.enabled
        assert cache.hit_rate == 0.0


class TestFiltering:
    def test_hit_after_insert(self):
        cache = MarkBitCache(4)
        cache.insert(0x100)
        assert cache.contains(0x100)
        assert cache.hits == 1

    def test_miss_before_insert(self):
        cache = MarkBitCache(4)
        assert not cache.contains(0x100)
        assert cache.lookups == 1 and cache.hits == 0

    def test_lru_eviction(self):
        cache = MarkBitCache(2)
        cache.insert(1 * 8)
        cache.insert(2 * 8)
        cache.insert(3 * 8)  # evicts 1
        assert not cache.contains(1 * 8)
        assert cache.contains(2 * 8) and cache.contains(3 * 8)

    def test_contains_refreshes_lru(self):
        cache = MarkBitCache(2)
        cache.insert(1 * 8)
        cache.insert(2 * 8)
        cache.contains(1 * 8)  # refresh 1
        cache.insert(3 * 8)  # evicts 2, not 1
        assert cache.contains(1 * 8)
        assert not cache.contains(2 * 8)

    def test_reinsert_is_refresh(self):
        cache = MarkBitCache(2)
        cache.insert(1 * 8)
        cache.insert(2 * 8)
        cache.insert(1 * 8)
        cache.insert(3 * 8)  # evicts 2
        assert cache.contains(1 * 8)

    def test_clear(self):
        cache = MarkBitCache(4)
        cache.insert(8)
        cache.clear()
        assert not cache.contains(8)

    def test_hit_rate(self):
        cache = MarkBitCache(4)
        cache.insert(8)
        cache.contains(8)
        cache.contains(16)
        assert cache.hit_rate == 0.5

    def test_hot_object_stream(self):
        """A small cache filters a bursty hot-object stream (Fig. 21b)."""
        cache = MarkBitCache(8)
        hot = [i * 8 for i in range(4)]
        for h in hot:
            cache.insert(h)
        hits_before = cache.hits
        for _ in range(10):
            for h in hot:
                assert cache.contains(h)
        assert cache.hits == hits_before + 40
