"""Completion semantics and the inline fast-path identity guarantee.

The zero-allocation fast paths (cache/TLB hits, queue handshakes, pipe
transfers) replace the ``Event`` + ``schedule(latency, event.trigger)``
idiom with a pre-resolved :class:`Completion`. Correctness hinges on two
properties, both pinned here:

* **Protocol equivalence** — a Completion observed through ``triggered``/
  ``value``/``add_callback``/``yield`` behaves exactly like the Event it
  replaces, including *where inside a cycle* its delivery lands
  (hop-preserving delivery).
* **Identity** — running the same workload with ``REPRO_FASTPATH`` on and
  off produces bit-identical cycle counts, marked sets, and event counts.
"""

import pytest

from repro.engine.simulator import (
    Completion,
    Event,
    Simulator,
    fastpath_enabled,
)


@pytest.fixture
def sim():
    return Simulator()


class TestFastpathSwitch:
    @pytest.mark.parametrize("raw", ["0", "off", "no", "false", "OFF", " 0 "])
    def test_disabled_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FASTPATH", raw)
        assert not fastpath_enabled()

    @pytest.mark.parametrize("raw", ["1", "on", "yes", "anything"])
    def test_enabled_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FASTPATH", raw)
        assert fastpath_enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert fastpath_enabled()


class TestCompletionSemantics:
    def test_triggered_follows_the_clock(self, sim):
        c = Completion(sim, sim.now + 5, "data")
        assert not c.triggered
        sim.run_until(sim.process(self._sleep(4)))
        assert not c.triggered
        sim.run_until(sim.process(self._sleep(1)))
        assert c.triggered
        assert c.value == "data"

    @staticmethod
    def _sleep(cycles):
        yield cycles

    def test_creation_schedules_nothing(self, sim):
        before = sim.events_processed
        Completion(sim, sim.now + 100, None)
        sim.run()
        assert sim.events_processed == before

    def test_ready_completion_consumed_synchronously(self, sim):
        log = []

        def proc():
            value = yield Completion(sim, sim.now, 42)
            log.append((sim.now, value))
            yield 1
            log.append((sim.now, "after"))

        sim.run_until(sim.process(proc()))
        assert log == [(0, 42), (1, "after")]

    def test_pending_completion_resumes_at_its_time(self, sim):
        log = []

        def proc():
            value = yield Completion(sim, sim.now + 7, "late")
            log.append((sim.now, value))

        sim.run_until(sim.process(proc()))
        assert log == [(7, "late")]

    def test_callback_on_ready_completion_runs_this_cycle(self, sim):
        log = []

        def proc():
            yield 3
            Completion(sim, sim.now - 1, "v").add_callback(
                lambda v: log.append((sim.now, v)))
            yield 1

        sim.run_until(sim.process(proc()))
        assert log == [(3, "v")]

    def test_hop_preserving_delivery_order(self, sim):
        """A pending Completion lands at the same intra-cycle position as
        the legacy ``schedule(latency, event.trigger)`` idiom it replaces.

        Both are armed at cycle 0 for cycle 5, legacy first. The legacy
        event's trigger fires first in the bucket and its waiter hop is
        appended; the Completion's ``_deliver`` runs second and appends its
        hop after — so waiters resume in arming order, not in reverse.
        """
        order = []

        def wait(handle, tag):
            value = yield handle
            order.append((tag, sim.now, value))

        legacy = Event(sim, name="legacy")
        sim.schedule(5, legacy.trigger, "ev")
        fast = Completion(sim, 5, "cp")
        sim.process(wait(legacy, "legacy"))
        sim.process(wait(fast, "fast"))
        sim.run()
        assert order == [("legacy", 5, "ev"), ("fast", 5, "cp")]

    def test_mixed_arming_delivery_positions(self, sim):
        """Deliveries land where each was *scheduled into the bucket*.

        The Event's trigger enters bucket 4 at arming time (cycle 0, before
        any waiter suspends); each pending Completion's delivery enters when
        its waiter suspends on it. So the Event's waiter resumes first even
        though its Completion-waiting peers were created earlier — the same
        positions the legacy ``schedule(latency, event.trigger)`` idiom
        produces, which is what keeps mixed fast/slow traffic bit-identical.
        """
        order = []

        def wait(handle, tag):
            yield handle
            order.append(tag)

        first = Completion(sim, 4, None)
        second = Event(sim, name="second")
        sim.schedule(4, second.trigger, None)
        third = Completion(sim, 4, None)
        for tag, handle in [("a", first), ("b", second), ("c", third)]:
            sim.process(wait(handle, tag))
        sim.run()
        assert order == ["b", "a", "c"]


class TestOnOffIdentity:
    """The same workload must be bit-identical with fast paths disabled."""

    @staticmethod
    def _run_gc(n_objects, seed):
        from repro.core.unit import GCUnit
        from repro.swgc import SoftwareCollector
        from tests.conftest import make_random_heap

        heap, _views = make_random_heap(n_objects=n_objects, seed=seed)
        checkpoint = heap.checkpoint()
        sw = SoftwareCollector(heap).collect()
        parity = heap.mark_parity
        marked = frozenset(
            a for a in heap.objects if heap.view(a).is_marked(parity))
        sw_events = heap.sim.events_processed
        heap.restore(checkpoint)
        hw = GCUnit(heap).collect()
        timing = (
            sw.mark_cycles, sw.sweep_cycles, sw.objects_marked,
            hw.mark_cycles, hw.sweep_cycles, hw.objects_marked, marked,
        )
        return timing, (sw_events, heap.sim.events_processed)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_gc_identical_on_and_off(self, monkeypatch, seed):
        """Cycle counts and marked sets match; the fast path may only
        *reduce* kernel events, never change simulated time."""
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        with_fast, fast_events = self._run_gc(220, seed)
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        without, slow_events = self._run_gc(220, seed)
        assert with_fast == without
        assert fast_events[0] <= slow_events[0]
        assert fast_events[1] <= slow_events[1]

    @pytest.mark.parametrize("fastpath", ["0", "1"])
    def test_cross_kernel_identity(self, monkeypatch, fastpath):
        """All three kernels agree, with the fast path both off and on."""
        monkeypatch.setenv("REPRO_FASTPATH", fastpath)
        runs = {}
        for engine in ("bucket", "heapq", "vector"):
            monkeypatch.setenv("REPRO_ENGINE", engine)
            runs[engine] = self._run_gc(150, 1)
        assert runs["bucket"] == runs["heapq"] == runs["vector"]


#: avrora @ scale=0.05 seed=1 — sw mark/sweep, hw mark/sweep cycles and
#: objects marked, from the paper-scale gc_comparison. Every kernel, with
#: the fast path on or off, must land on exactly these numbers.
PINNED_CYCLES = [1_096_061, 662_575, 310_147, 339_682, 6_637]
#: sha256(repr(bus events))[:16] for the same workload's traced collection.
PINNED_TRACE_DIGEST = "4e25471016662c74"


@pytest.mark.slow
class TestPinnedIdentityGate:
    """The 3x2 identity gate: {bucket, heapq, vector} x {fastpath on, off}.

    Unlike the relative cross-kernel checks above, this pins *absolute*
    constants at a paper-relevant scale, so a regression that shifts every
    kernel in lockstep (e.g. a timing change in the DRAM model) still
    trips the gate.
    """

    @staticmethod
    def _comparison_cycles():
        from repro.harness.runners import run_gc_comparison
        from repro.workloads.profiles import DACAPO_PROFILES

        comp = run_gc_comparison(DACAPO_PROFILES["avrora"], scale=0.05,
                                 seed=1)
        return [comp.sw.mark_cycles, comp.sw.sweep_cycles,
                comp.hw.mark_cycles, comp.hw.sweep_cycles,
                comp.sw.objects_marked]

    @staticmethod
    def _trace_digest():
        import hashlib

        from repro.harness.tracing import trace_collection

        cap = trace_collection("avrora", scale=0.05, seed=1)
        blob = repr(list(cap.bus)).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    @pytest.mark.parametrize("engine", ["bucket", "heapq", "vector"])
    @pytest.mark.parametrize("fastpath", ["0", "1"])
    def test_pinned_cycles(self, monkeypatch, engine, fastpath):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        monkeypatch.setenv("REPRO_FASTPATH", fastpath)
        assert self._comparison_cycles() == PINNED_CYCLES

    @pytest.mark.parametrize("engine", ["bucket", "heapq", "vector"])
    def test_pinned_trace_digest(self, monkeypatch, engine):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert self._trace_digest() == PINNED_TRACE_DIGEST
