"""Memory-mapped register file (§V-B, §V-E).

"We also connect a set of memory mapped (MMIO) registers to the periphery
bus (Southbridge), for configuration and communication with the CPU."

The register map mirrors what the Linux driver programs: the process's
page-table base, the hwgc-space and spill-region bounds, the block-list
location, and a command/status pair the runtime polls ("the runtime system
polls a control register to wait for it to be ready", §IV-C).
"""

from __future__ import annotations

import enum
from typing import Dict


class Reg(enum.IntEnum):
    """Register offsets (byte offsets within the MMIO window)."""

    COMMAND = 0x00
    STATUS = 0x08
    PAGE_TABLE_BASE = 0x10
    HWGC_BASE = 0x18
    HWGC_SIZE = 0x20
    SPILL_BASE = 0x28
    SPILL_SIZE = 0x30
    BLOCK_LIST_BASE = 0x38
    MARK_PARITY = 0x40
    N_SWEEPERS = 0x48
    OBJECTS_MARKED = 0x50  # read-only result counter
    CELLS_FREED = 0x58  # read-only result counter
    FALLBACKS = 0x60  # read-only: collections finished by the SW safety net
    BARRIER_HITS = 0x68  # read-only: write-barrier publications (§IV-D)
    OBJECTS_RELOCATED = 0x70  # read-only: objects evacuated this cycle


class Command(enum.IntEnum):
    IDLE = 0
    START_MARK = 1
    START_SWEEP = 2
    START_FULL_GC = 3
    #: Concurrent collection (§IV-D): marking races the mutator; only the
    #: termination handshake and the sweep pause the application.
    START_CONCURRENT_GC = 4


class Status(enum.IntEnum):
    READY = 0
    MARKING = 1
    SWEEPING = 2
    DONE = 3
    #: The hardware collection was aborted and the software safety net
    #: (§V-E's replaceable libhwgc) is finishing the pause.
    FALLBACK = 4
    #: Concurrent marking in progress: the mutator is running; the reader
    #: is polling hwgc-space for write-barrier publications.
    CONC_MARKING = 5


class MMIORegisterFile:
    """A plain register file; the driver reads/writes it like /dev/hwgc0."""

    def __init__(self) -> None:
        self._regs: Dict[int, int] = {int(r): 0 for r in Reg}
        self._regs[Reg.STATUS] = int(Status.READY)

    def write(self, offset: int, value: int) -> None:
        if offset not in self._regs:
            raise ValueError(f"write to unmapped MMIO offset {offset:#x}")
        self._regs[offset] = value

    def read(self, offset: int) -> int:
        if offset not in self._regs:
            raise ValueError(f"read from unmapped MMIO offset {offset:#x}")
        return self._regs[offset]

    @property
    def status(self) -> Status:
        return Status(self._regs[Reg.STATUS])

    def set_status(self, status: Status) -> None:
        self._regs[Reg.STATUS] = int(status)
