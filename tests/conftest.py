"""Shared fixtures: small heaps and built workloads sized for fast tests."""

import random

import pytest

from repro.engine.simulator import ENGINES
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import MemorySystemConfig
from repro.workloads.graphgen import HeapGraphBuilder
from repro.workloads.profiles import DACAPO_PROFILES

SMALL_MEM = 32 * 1024 * 1024


@pytest.fixture(params=sorted(ENGINES))
def sim(request):
    """Every test taking ``sim`` runs once per kernel class — the kernels
    are interchangeable by contract, so the whole engine test surface
    doubles as a per-kernel conformance suite."""
    return ENGINES[request.param]()


@pytest.fixture
def small_heap():
    """A fresh small heap (32 MiB of simulated memory)."""
    return ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))


def make_random_heap(n_objects=400, seed=0, max_refs=4, max_payload=6,
                     root_count=20, wire_prob=0.8):
    """A quick random object graph, independent of the DaCapo profiles."""
    rng = random.Random(seed)
    heap = ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))
    views = [
        heap.new_object(rng.randint(0, max_refs), rng.randint(0, max_payload))
        for _ in range(n_objects)
    ]
    for view in views:
        for i in range(view.n_refs):
            if rng.random() < wire_prob:
                view.set_ref(i, rng.choice(views).addr)
    heap.set_roots([views[i].addr for i in range(min(root_count, n_objects))])
    return heap, views


@pytest.fixture
def random_heap():
    heap, _views = make_random_heap()
    return heap


@pytest.fixture(scope="session")
def tiny_built():
    """A profile-generated heap at minimal scale, shared across tests that
    only read it (tests that collect must checkpoint/restore)."""
    built = HeapGraphBuilder(DACAPO_PROFILES["avrora"], scale=0.008,
                             seed=11).build()
    return built, built.heap.checkpoint()
