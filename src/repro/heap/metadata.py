"""Structure-of-arrays metadata sidecar over a heap image.

:class:`ObjectView` decodes an object's status word on every hot accessor
(``n_refs``, ``refs``, ``ref_paddr``), which costs a numpy scalar read plus
bit arithmetic per call — measurable across the hundreds of thousands of
accessor calls a heap build or a ground-truth BFS performs. The *layout*
facts those accessors derive are immutable for the lifetime of an
allocation, so :class:`HeapMetadata` captures them once, as flat parallel
lists indexed by a single ``addr -> slot`` dict:

* ``n_refs`` / ``is_array`` — decoded from the status word's refcount field;
* ``status_index`` / ``ref_base_index`` — word indices into the physical
  memory's backing array (``PhysicalMemory.words``), so reference slices
  and header reads skip per-access address translation;
* ``header_word`` — the status word at build time (mark/tag bits included,
  for reference; mark bits are *mutable*, so liveness checks must still
  read memory — see :meth:`is_marked`);
* ``sizeclass`` — the allocator size class for MarkSweep-space objects,
  ``-1`` for bump-allocated (LOS/immortal/code) objects.

The sidecar is a pure cache: every answer it gives equals what the
equivalent ``ObjectView`` chain computes from memory (unit-tested in
``tests/heap/test_metadata.py``). :class:`~repro.heap.heapimage.
ManagedHeap` builds one lazily and drops it whenever the object population
can change (allocation, restore, pruning), so holders never observe stale
layout.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.heap.blocks import BLOCK_BYTES
from repro.heap.header import ARRAY_FLAG, MARK_BIT, REFCOUNT_MASK, REFCOUNT_SHIFT
from repro.memory.config import WORD_BYTES


class HeapMetadata:
    """Immutable per-object layout facts in structure-of-arrays form."""

    __slots__ = (
        "mem",
        "virt_offset",
        "index",
        "n_refs",
        "is_array",
        "status_index",
        "ref_base_index",
        "header_word",
        "sizeclass",
    )

    def __init__(
        self,
        mem,
        objects: Iterable[int],
        virt_offset: int,
        ms_pstart: Optional[int] = None,
        block_class: Optional[Dict[int, int]] = None,
    ):
        self.mem = mem
        self.virt_offset = virt_offset
        index: Dict[int, int] = {}
        n_refs_col: List[int] = []
        is_array_col: List[bool] = []
        status_index_col: List[int] = []
        ref_base_index_col: List[int] = []
        header_col: List[int] = []
        sizeclass_col: List[int] = []
        words = mem.words
        refcount_mask = REFCOUNT_MASK
        refcount_shift = REFCOUNT_SHIFT
        array_flag = ARRAY_FLAG
        word_bytes = WORD_BYTES
        for addr in objects:
            if addr in index:
                continue
            status_paddr = addr - virt_offset
            status_idx = status_paddr // word_bytes
            header = int(words[status_idx])
            n = (header >> refcount_shift) & refcount_mask
            index[addr] = len(n_refs_col)
            n_refs_col.append(n)
            is_array_col.append(bool(header & array_flag))
            status_index_col.append(status_idx)
            ref_base_index_col.append(status_idx - n)
            header_col.append(header)
            if ms_pstart is not None and block_class is not None \
                    and status_paddr >= ms_pstart:
                block = (status_paddr - ms_pstart) // BLOCK_BYTES
                sizeclass_col.append(block_class.get(block, -1))
            else:
                sizeclass_col.append(-1)
        self.index = index
        self.n_refs = n_refs_col
        self.is_array = is_array_col
        self.status_index = status_index_col
        self.ref_base_index = ref_base_index_col
        self.header_word = header_col
        self.sizeclass = sizeclass_col

    def __len__(self) -> int:
        return len(self.n_refs)

    def __contains__(self, addr: int) -> bool:
        return addr in self.index

    # -- flat accessors (addr-keyed convenience over the slot arrays) -------

    def slot(self, addr: int) -> Optional[int]:
        """The object's slot in the parallel arrays, or ``None``."""
        return self.index.get(addr)

    def refs(self, addr: int) -> List[int]:
        """Non-null outgoing references (current memory contents)."""
        i = self.index[addr]
        n = self.n_refs[i]
        if n == 0:
            return []
        base = self.ref_base_index[i]
        return [int(w) for w in self.mem.words[base:base + n] if w]

    def ref_slot_paddrs(self, addr: int) -> List[int]:
        """Physical addresses of every reference slot, in field order."""
        i = self.index[addr]
        base = self.ref_base_index[i] * WORD_BYTES
        return [base + WORD_BYTES * k for k in range(self.n_refs[i])]

    def is_marked(self, addr: int, parity: int) -> bool:
        """Mark-bit test against *live* memory (mark bits are mutable)."""
        word = int(self.mem.words[self.status_index[self.index[addr]]])
        return ((word & MARK_BIT) != 0) == (parity == 1)

    # -- bulk operations ----------------------------------------------------

    def reachable(self, roots: Iterable[int]) -> Set[int]:
        """BFS over the current memory image using the flat layout columns.

        Equivalent to chasing ``ObjectView.refs()`` from the roots, minus
        the per-object header decoding. Addresses missing from the sidecar
        (objects the heap never tracked) fall back to decoding the status
        word from memory — including its bounds checking — so the result is
        identical to the view-based traversal for any graph.
        """
        index = self.index
        n_refs = self.n_refs
        ref_base = self.ref_base_index
        mem = self.mem
        words = mem.words
        virt_offset = self.virt_offset
        word_bytes = WORD_BYTES
        seen: Set[int] = set()
        seen_add = seen.add
        frontier = [r for r in roots if r]
        pop = frontier.pop
        extend = frontier.extend
        while frontier:
            addr = pop()
            if addr in seen:
                continue
            seen_add(addr)
            i = index.get(addr)
            if i is None:
                status_paddr = addr - virt_offset
                header = mem.read_word(status_paddr)
                n = (header >> REFCOUNT_SHIFT) & REFCOUNT_MASK
                if n:
                    extend(w for w in mem.read_words(
                        status_paddr - word_bytes * n, n) if w)
                continue
            n = n_refs[i]
            if n:
                base = ref_base[i]
                extend(int(w) for w in words[base:base + n] if w)
        return seen
