"""The software side of the hardware GC: driver + libhwgc model (§V-E).

In the prototype, a Linux character device (/dev/hwgc0) configures the
unit: "the driver reads its process state, including the page-table base
register and status bits, which are written to memory-mapped registers in
the GC unit"; JikesRVM's MMTk plan calls into libhwgc.so through the
SysCall interface to initiate collections and poll for completion.

:class:`HWGCDriver` reproduces that control flow against the simulated
MMIO register file, and is the entry point the examples use: configure
once, then ``run_gc()`` per collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Set

from repro.core.config import GCUnitConfig, HardwareGCResult
from repro.core.mmio import Command, MMIORegisterFile, Reg, Status
from repro.core.unit import GCUnit
from repro.engine.simulator import StallReport
from repro.engine.watchdog import GCWatchdog
from repro.heap.heapimage import HeapCheckpoint, ManagedHeap
from repro.heap.verify import HeapVerifier, VerificationReport


@dataclass
class SafeGCResult:
    """Outcome of :meth:`HWGCDriver.run_gc_safe`.

    ``outcome`` is ``"hardware"`` when the accelerator finished and passed
    the software checks, or ``"fallback"`` when the collection was aborted
    (watchdog trip, model exception, or failed verification) and re-run on
    the :class:`~repro.swgc.marksweep.SoftwareCollector` safety net. A
    fallback is never silent: the stall/verification evidence and every
    injected fault that fired ride along here and in the stats/trace.
    """

    result: Any  # HardwareGCResult or SoftwareGCResult
    outcome: str
    stall: Optional[StallReport] = None
    hardware_error: Optional[str] = None
    verification: Optional[VerificationReport] = None
    faults: List[Any] = field(default_factory=list)
    discarded_events: int = 0
    discarded_requests: int = 0

    @property
    def fallback(self) -> bool:
        return self.outcome == "fallback"

    def reason(self) -> str:
        """One-line explanation of why the fallback (if any) happened."""
        if not self.fallback:
            return "hardware collection completed and verified"
        if self.stall is not None:
            culprit = self.stall.culprit or "unknown component"
            return f"watchdog stall (culprit: {culprit})"
        if self.hardware_error is not None:
            return f"hardware model error: {self.hardware_error}"
        if self.verification is not None and not self.verification.ok:
            problems = (self.verification.mark_errors
                        + self.verification.sweep_errors
                        + self.verification.freelist_errors)
            return f"verification failed ({len(problems)} problems)"
        return "unknown"


class HWGCDriver:
    """Configures the unit via MMIO and runs collections (the libhwgc path)."""

    def __init__(self, heap: ManagedHeap,
                 config: Optional[GCUnitConfig] = None):
        self.heap = heap
        self.config = config if config is not None else GCUnitConfig()
        self.mmio = MMIORegisterFile()
        self._initialized = False

    def init_device(self) -> None:
        """What the kernel driver does at open(): program the address-space
        and region registers from the process's state."""
        memsys = self.heap.memsys
        self.mmio.write(Reg.PAGE_TABLE_BASE, memsys.page_table.root)
        self.mmio.write(Reg.HWGC_BASE, memsys.address_map.hwgc[0])
        self.mmio.write(
            Reg.HWGC_SIZE,
            memsys.address_map.hwgc[1] - memsys.address_map.hwgc[0],
        )
        self.mmio.write(Reg.SPILL_BASE, memsys.address_map.spill[0])
        self.mmio.write(
            Reg.SPILL_SIZE,
            memsys.address_map.spill[1] - memsys.address_map.spill[0],
        )
        self.mmio.write(Reg.BLOCK_LIST_BASE, memsys.address_map.block_list[0])
        self.mmio.write(Reg.N_SWEEPERS, self.config.n_sweepers)
        self._initialized = True

    def run_gc(self) -> HardwareGCResult:
        """Initiate a full collection and poll until DONE (§IV-C).

        Precondition: the runtime has already written the roots into
        hwgc-space (root scanning stays in software, §IV-C)."""
        if not self._initialized:
            raise RuntimeError("driver not initialized; call init_device()")
        if self.mmio.status != Status.READY:
            raise RuntimeError(f"unit busy: {self.mmio.status}")
        self.mmio.write(Reg.MARK_PARITY, self.heap.mark_parity)
        self.mmio.write(Reg.COMMAND, int(Command.START_FULL_GC))
        self.mmio.set_status(Status.MARKING)
        unit = GCUnit(self.heap, self.config)
        mark_cycles = unit.mark()
        self.mmio.set_status(Status.SWEEPING)
        sweep_cycles = unit.sweep()
        self.mmio.set_status(Status.DONE)
        result = unit.collect_result(mark_cycles, sweep_cycles)
        self.mmio.write(Reg.OBJECTS_MARKED, result.objects_marked)
        self.mmio.write(Reg.CELLS_FREED, result.cells_freed)
        self.mmio.write(Reg.COMMAND, int(Command.IDLE))
        self.mmio.set_status(Status.READY)
        return result

    def run_gc_concurrent(self, mutator, relocate_blocks: int = 0):
        """Initiate a concurrent collection (§IV-D) and run it to DONE.

        The mutator keeps running during marking: its reference operations
        go through the write/read barriers, and (with ``relocate_blocks``)
        relocation is served mid-traversal from the forwarding table. Only
        the termination handshake and the sweep pause the application.
        """
        from repro.core.concurrent.collect import ConcurrentCycle

        if not self._initialized:
            raise RuntimeError("driver not initialized; call init_device()")
        if self.mmio.status != Status.READY:
            raise RuntimeError(f"unit busy: {self.mmio.status}")
        self.mmio.write(Reg.MARK_PARITY, self.heap.mark_parity)
        self.mmio.write(Reg.COMMAND, int(Command.START_CONCURRENT_GC))
        cycle = ConcurrentCycle(self.heap, self.config, mutator,
                                relocate_blocks=relocate_blocks)
        unit = GCUnit(self.heap, self.config)
        result = cycle.run(unit, on_phase=self._concurrent_phase)
        self.mmio.set_status(Status.DONE)
        self.mmio.write(Reg.OBJECTS_MARKED, result.objects_marked)
        self.mmio.write(Reg.CELLS_FREED, result.cells_freed)
        self.mmio.write(Reg.BARRIER_HITS, result.write_barrier_hits)
        self.mmio.write(Reg.OBJECTS_RELOCATED, result.objects_relocated)
        self.mmio.write(Reg.COMMAND, int(Command.IDLE))
        self.mmio.set_status(Status.READY)
        return result

    def _concurrent_phase(self, phase: str) -> None:
        """Status-register transitions as the concurrent cycle progresses."""
        if phase == "mark":
            self.mmio.set_status(Status.CONC_MARKING)
        elif phase == "sweep":
            self.mmio.set_status(Status.SWEEPING)

    # -- the safety net (§V-E's replaceable libhwgc) -----------------------

    def run_gc_safe(self, watchdog: Optional[GCWatchdog] = None,
                    verify: bool = True, mode: str = "stw",
                    mutator=None, relocate_blocks: int = 0) -> SafeGCResult:
        """Run a collection with supervision and graceful degradation.

        The hardware collection runs under a :class:`GCWatchdog`; its
        result is then software-checked against a reachability oracle
        captured *before* the run (so even a fault that corrupts the
        object graph cannot fool the check). On a watchdog trip, a model
        exception, or a failed check, the hardware run is aborted — all
        residual simulation events and queued memory requests from the
        dead unit are discarded, the pre-GC heap snapshot is restored —
        and the collection re-runs on the software safety net. Either way
        the final live set equals the oracle exactly.

        ``mode="concurrent"`` supervises a concurrent cycle instead (pass
        the ``mutator``; see :meth:`run_gc_concurrent`). The same safety
        net applies, with one honest caveat: falling back restores the
        pre-cycle snapshot, so the mutator's work during the doomed cycle
        is lost and the software collector finishes a plain STW pause.
        """
        from repro.swgc.marksweep import SoftwareCollector

        if mode == "concurrent":
            return self._run_gc_safe_concurrent(
                watchdog, verify, mutator, relocate_blocks)
        if mode != "stw":
            raise ValueError(f"unknown GC mode {mode!r}")
        if not self._initialized:
            raise RuntimeError("driver not initialized; call init_device()")
        if self.mmio.status != Status.READY:
            raise RuntimeError(f"unit busy: {self.mmio.status}")
        heap = self.heap
        stats = heap.memsys.stats
        snapshot = heap.checkpoint()
        oracle = heap.reachable()
        wd = watchdog if watchdog is not None else GCWatchdog()
        wd.attach(heap.sim, stats)
        stall: Optional[StallReport] = None
        hardware_error: Optional[str] = None
        result: Optional[HardwareGCResult] = None
        self.mmio.write(Reg.MARK_PARITY, heap.mark_parity)
        self.mmio.write(Reg.COMMAND, int(Command.START_FULL_GC))
        self.mmio.set_status(Status.MARKING)
        unit = GCUnit(heap, self.config)
        try:
            mark_cycles = unit.mark()
            self.mmio.set_status(Status.SWEEPING)
            sweep_cycles = unit.sweep()
            result = unit.collect_result(mark_cycles, sweep_cycles)
        except StallReport as exc:
            stall = exc
        except Exception as exc:  # a fault surfacing as a model error
            hardware_error = f"{type(exc).__name__}: {exc}"
        finally:
            wd.detach(heap.sim)
        verification: Optional[VerificationReport] = None
        if result is not None and verify:
            verification = self._post_collection_check(oracle)
        plane = stats.hwfaults
        fired = list(plane.fired) if plane is not None else []
        if result is not None and (verification is None or verification.ok):
            self.mmio.set_status(Status.DONE)
            self.mmio.write(Reg.OBJECTS_MARKED, result.objects_marked)
            self.mmio.write(Reg.CELLS_FREED, result.cells_freed)
            self.mmio.write(Reg.COMMAND, int(Command.IDLE))
            self.mmio.set_status(Status.READY)
            return SafeGCResult(result=result, outcome="hardware",
                                verification=verification, faults=fired)
        # -- graceful degradation ------------------------------------------
        discarded_events, discarded_requests = self._abort_hardware(snapshot)
        self.mmio.set_status(Status.FALLBACK)
        stats.inc("driver.fallbacks")
        safe = SafeGCResult(result=None, outcome="fallback", stall=stall,
                            hardware_error=hardware_error,
                            verification=verification, faults=fired,
                            discarded_events=discarded_events,
                            discarded_requests=discarded_requests)
        trace = stats.trace
        if trace is not None:
            trace.emit(heap.sim.now, "fallback", safe.reason(),
                       stall.culprit if stall is not None else "")
        sw = SoftwareCollector(heap)
        safe.result = sw.collect()
        if verify:
            after = self._post_collection_check(oracle)
            if not after.ok:
                after.raise_if_failed()  # double fault: nothing left to try
        self.mmio.write(Reg.OBJECTS_MARKED, safe.result.objects_marked)
        self.mmio.write(Reg.CELLS_FREED, safe.result.cells_freed)
        self.mmio.write(Reg.FALLBACKS, self.mmio.read(Reg.FALLBACKS) + 1)
        self.mmio.write(Reg.COMMAND, int(Command.IDLE))
        self.mmio.set_status(Status.READY)
        return safe

    def _post_collection_check(self, oracle: Set[int]) -> VerificationReport:
        """Software check of a finished collection against the pre-GC
        reachability oracle.

        Checks only what stays decodable after a sweep: every oracle-live
        object's mark bit (swept dead cells no longer decode as objects,
        so the full ``check_marks`` walk is not applicable here), the
        per-cell sweep outcome, and the rebuilt free lists. A verifier
        crash — e.g. a corrupted header that no longer parses — counts as
        a failed check, not a driver error.
        """
        heap = self.heap
        report = VerificationReport()
        parity = heap.mark_parity
        try:
            for addr in sorted(oracle):
                report.objects_checked += 1
                if not heap.view(addr).is_marked(parity):
                    report.mark_errors.append(
                        f"unmarked live object at {addr:#x}")
            verifier = HeapVerifier(heap)
            verifier.check_sweep(report=report, parity=parity, live=oracle)
            verifier.check_free_lists(report=report)
        except Exception as exc:
            report.sweep_errors.append(
                f"verifier crashed: {type(exc).__name__}: {exc}")
        return report

    # -- concurrent collection under the same safety net --------------------

    def _run_gc_safe_concurrent(self, watchdog: Optional[GCWatchdog],
                                verify: bool, mutator,
                                relocate_blocks: int) -> SafeGCResult:
        """Supervised concurrent collection with software fallback.

        The success path verifies against the reachability oracle captured
        at the termination handshake (the only oracle valid for a graph
        that changed mid-cycle). The fallback path restores the pre-cycle
        snapshot — losing the doomed cycle's mutator work — and re-runs as
        a software STW collection verified against the *pre-cycle* oracle.
        """
        from repro.core.concurrent.collect import ConcurrentCycle
        from repro.swgc.marksweep import SoftwareCollector

        if mutator is None:
            raise ValueError("mode='concurrent' needs a mutator")
        if not self._initialized:
            raise RuntimeError("driver not initialized; call init_device()")
        if self.mmio.status != Status.READY:
            raise RuntimeError(f"unit busy: {self.mmio.status}")
        heap = self.heap
        stats = heap.memsys.stats
        snapshot = heap.checkpoint()
        pre_oracle = heap.reachable()  # valid only for the restored snapshot
        wd = watchdog if watchdog is not None else GCWatchdog()
        wd.attach(heap.sim, stats)
        stall: Optional[StallReport] = None
        hardware_error: Optional[str] = None
        result = None
        self.mmio.write(Reg.MARK_PARITY, heap.mark_parity)
        self.mmio.write(Reg.COMMAND, int(Command.START_CONCURRENT_GC))
        unit = GCUnit(heap, self.config)
        cycle = ConcurrentCycle(heap, self.config, mutator,
                                relocate_blocks=relocate_blocks)
        try:
            result = cycle.run(unit, on_phase=self._concurrent_phase)
        except StallReport as exc:
            stall = exc
        except Exception as exc:  # a fault surfacing as a model error
            hardware_error = f"{type(exc).__name__}: {exc}"
        finally:
            wd.detach(heap.sim)
        verification: Optional[VerificationReport] = None
        if result is not None and verify:
            verification = self._post_concurrent_check(result.oracle)
        plane = stats.hwfaults
        fired = list(plane.fired) if plane is not None else []
        if result is not None and (verification is None or verification.ok):
            self.mmio.set_status(Status.DONE)
            self.mmio.write(Reg.OBJECTS_MARKED, result.objects_marked)
            self.mmio.write(Reg.CELLS_FREED, result.cells_freed)
            self.mmio.write(Reg.BARRIER_HITS, result.write_barrier_hits)
            self.mmio.write(Reg.OBJECTS_RELOCATED, result.objects_relocated)
            self.mmio.write(Reg.COMMAND, int(Command.IDLE))
            self.mmio.set_status(Status.READY)
            return SafeGCResult(result=result, outcome="hardware",
                                verification=verification, faults=fired)
        # -- graceful degradation: abandon the cycle and its mutator work --
        discarded_events, discarded_requests = self._abort_hardware(snapshot)
        self.mmio.set_status(Status.FALLBACK)
        stats.inc("driver.fallbacks")
        safe = SafeGCResult(result=None, outcome="fallback", stall=stall,
                            hardware_error=hardware_error,
                            verification=verification, faults=fired,
                            discarded_events=discarded_events,
                            discarded_requests=discarded_requests)
        trace = stats.trace
        if trace is not None:
            trace.emit(heap.sim.now, "fallback", safe.reason(),
                       stall.culprit if stall is not None else "")
        sw = SoftwareCollector(heap)
        safe.result = sw.collect()
        if verify:
            after = self._post_collection_check(pre_oracle)
            if not after.ok:
                after.raise_if_failed()  # double fault: nothing left to try
        self.mmio.write(Reg.OBJECTS_MARKED, safe.result.objects_marked)
        self.mmio.write(Reg.CELLS_FREED, safe.result.cells_freed)
        self.mmio.write(Reg.FALLBACKS, self.mmio.read(Reg.FALLBACKS) + 1)
        self.mmio.write(Reg.COMMAND, int(Command.IDLE))
        self.mmio.set_status(Status.READY)
        return safe

    def _post_concurrent_check(self, oracle: Set[int]) -> VerificationReport:
        """Software check of a finished *concurrent* collection.

        The oracle is the reachable set captured at the termination
        handshake. Two concurrent-specific relaxations versus
        :meth:`_post_collection_check`: floating garbage (objects that died
        during marking but were marked under SATB) legitimately survives
        this cycle's sweep, so the strict surviving-garbage differential is
        off; everything else — every handshake-live object marked, no
        unswept dead cells, valid free lists — still holds exactly.
        """
        heap = self.heap
        report = VerificationReport()
        parity = heap.mark_parity
        try:
            for addr in sorted(oracle):
                report.objects_checked += 1
                if not heap.view(addr).is_marked(parity):
                    report.mark_errors.append(
                        f"unmarked live object at {addr:#x}")
            verifier = HeapVerifier(heap)
            verifier.check_sweep(report=report, parity=parity, live=oracle,
                                 floating_ok=True)
            verifier.check_free_lists(report=report)
        except Exception as exc:
            report.sweep_errors.append(
                f"verifier crashed: {type(exc).__name__}: {exc}")
        return report

    def _abort_hardware(self, snapshot: HeapCheckpoint):
        """Tear down an abandoned hardware collection.

        Order matters: residual events and queued DRAM requests from the
        dead unit must be discarded *before* the heap snapshot is restored
        — a stale completion callback firing into the restored image would
        corrupt it all over again. The fault plane is suspended for the
        remainder of the pause: the safety net models the CPU path, which
        the injected hardware faults do not reach.
        """
        sim = self.heap.sim
        discarded_events = sim.discard_pending()
        model = self.heap.memsys.model
        discarded_requests = model.abort_pending()
        stats = self.heap.memsys.stats
        plane = stats.hwfaults
        if plane is not None:
            plane.suspend()
        wd = stats.watchdog
        if wd is not None:
            wd.outstanding.clear()
        self.heap.restore(snapshot)
        return discarded_events, discarded_requests
