"""Segregated free-list size classes.

Jikes's Mark & Sweep plan "uses a segregated free list allocator. Memory is
divided into blocks, and each block is assigned a size class, which
determines the size of the cells that the block is divided into" (§V-A).
The runtime informs the GC unit of the "available size classes" as
configuration parameters (§IV-C).

Cell sizes are in 8-byte words and include the two metadata words
(scan word + status word) of the bidirectional layout.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.memory.config import WORD_BYTES

#: Default cell sizes in words: 32 B .. 2 KiB.
SIZE_CLASSES_WORDS: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)


class SizeClassTable:
    """Maps a requested object size (in words) to a size class index."""

    def __init__(self, classes_words: Sequence[int] = SIZE_CLASSES_WORDS):
        if not classes_words:
            raise ValueError("at least one size class required")
        if list(classes_words) != sorted(set(classes_words)):
            raise ValueError("size classes must be strictly increasing")
        if any(c < 3 for c in classes_words):
            raise ValueError(
                "cells must hold at least scan word + status word + 1 field"
            )
        self.classes_words: List[int] = list(classes_words)

    def __len__(self) -> int:
        return len(self.classes_words)

    @property
    def max_words(self) -> int:
        """Largest cell size; bigger objects go to the large-object space."""
        return self.classes_words[-1]

    def class_for(self, n_words: int) -> int:
        """Smallest size class whose cells fit ``n_words``; raises if none."""
        for index, cell_words in enumerate(self.classes_words):
            if cell_words >= n_words:
                return index
        raise ValueError(
            f"object of {n_words} words exceeds the largest size class "
            f"({self.max_words} words); allocate it in the large object space"
        )

    def cell_words(self, index: int) -> int:
        return self.classes_words[index]

    def cell_bytes(self, index: int) -> int:
        return self.classes_words[index] * WORD_BYTES

    def fits(self, n_words: int) -> bool:
        """Whether an object of ``n_words`` belongs in the MarkSweep space."""
        return n_words <= self.max_words
