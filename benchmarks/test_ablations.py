"""Ablation benches for the design choices DESIGN.md calls out."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_abl_layout_bidirectional_wins(benchmark, bench_scale):
    """§IV-A idea I: the bidirectional layout removes TIB indirections."""
    result = run_and_render(benchmark, E.abl_layout, scale=bench_scale * 0.75)
    for row in result.rows:
        assert row[3] > 1.02, f"{row[0]}: conventional should cost more"


def test_abl_decoupling(benchmark, bench_scale):
    """§IV-A ideas II/III: decoupled marker/tracer with deep request slots."""
    result = run_and_render(benchmark, E.abl_decoupling,
                            scale=bench_scale * 0.75)
    by_label = {row[0]: row[1] for row in result.rows}
    decoupled = by_label["decoupled (TQ=128, 16 slots)"]
    single_slot = by_label["single-slot marker"]
    # Collapsing the marker to one outstanding request loses most of the
    # unit's memory-level parallelism.
    assert single_slot > 1.5 * decoupled


def test_abl_scheduler(benchmark, bench_scale):
    """§VI-A: FR-FCFS with 16 outstanding reads vs FIFO with 8."""
    result = run_and_render(benchmark, E.abl_scheduler,
                            scale=bench_scale * 0.75)
    rows = {row[0]: row for row in result.rows}
    # The unit is sensitive to the memory scheduler...
    assert rows["FR-FCFS/16"][2] < rows["FIFO/8"][2]
    # ...while the CPU baseline barely notices (paper: "insensitive").
    cpu_times = [row[1] for row in result.rows]
    assert max(cpu_times) < 1.10 * min(cpu_times)


def test_abl_barriers(benchmark):
    """§III/§IV-E: barrier design points for a concurrent collector."""
    result = run_and_render(benchmark, E.abl_barriers)
    rows = {row[0]: row for row in result.rows}
    assert rows["software"][1] < 20.0  # ZGC-like: "up to 15%"
    assert rows["vm_trap"][2] > rows["vm_trap"][1] * 10  # trap storms
    assert rows["refload"][1] < rows["software"][1]
    assert rows["coherence"][1] < rows["software"][1]
