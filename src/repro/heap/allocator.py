"""Segregated free-list allocator over blocks and size classes (§V-A).

Functional (untimed) — in the paper this is the application/runtime side:
the GC unit only *produces* free lists; the mutator consumes them during
allocation. The allocator:

* carves fresh :data:`~repro.heap.blocks.BLOCK_BYTES` blocks out of the
  MarkSweep space, assigns each a size class, and threads all cells of a
  fresh block onto its free list (next pointers stored in the cells
  themselves, Fig. 11);
* pops cells off per-class free lists, consulting the block list's
  sweeper-updated ``freelist_head`` fields after a GC ("places the
  resulting free lists into main memory for the application on the CPU to
  use during allocation", §IV);
* initializes object metadata through the configured layout and returns the
  object reference (virtual address of the status word).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.heap.blocks import BLOCK_BYTES, BlockDescriptor, BlockList
from repro.heap.layout import BidirectionalLayout, ObjectShape
from repro.heap.sizeclass import SizeClassTable
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory


class OutOfMemoryError(MemoryError):
    """The MarkSweep space has no free cells and no room for fresh blocks."""


class SegregatedFreeListAllocator:
    """Allocation front-end for the MarkSweep space."""

    def __init__(
        self,
        mem: PhysicalMemory,
        block_list: BlockList,
        space_pstart: int,
        space_pend: int,
        virt_offset: int,
        size_classes: Optional[SizeClassTable] = None,
        layout=BidirectionalLayout,
        alloc_mark_value: int = 0,
    ):
        self.mem = mem
        self.block_list = block_list
        self.space_pstart = space_pstart
        self.space_pend = space_pend
        self.virt_offset = virt_offset
        self.size_classes = size_classes or SizeClassTable()
        self.layout = layout
        #: Mark-bit value written into fresh objects; the heap updates this
        #: when mark parity flips after a GC.
        self.alloc_mark_value = alloc_mark_value
        self._fresh_cursor = space_pstart
        # Per size class: indices of blocks that may still have free cells.
        self._class_blocks: Dict[int, List[int]] = {
            i: [] for i in range(len(self.size_classes))
        }
        self._block_class: Dict[int, int] = {}  # block index -> class
        self.objects_allocated = 0
        self.bytes_allocated = 0

    # -- address helpers ---------------------------------------------------

    def to_virtual(self, paddr: int) -> int:
        return paddr + self.virt_offset

    def to_physical(self, vaddr: int) -> int:
        return vaddr - self.virt_offset

    # -- block management ----------------------------------------------------

    def _carve_block(self, class_index: int) -> int:
        """Take a fresh block from the space; returns its block-list index."""
        if self._fresh_cursor + BLOCK_BYTES > self.space_pend:
            raise OutOfMemoryError(
                f"MarkSweep space exhausted at {self._fresh_cursor:#x}"
            )
        base_paddr = self._fresh_cursor
        self._fresh_cursor += BLOCK_BYTES
        cell_bytes = self.size_classes.cell_bytes(class_index)
        n_cells = BLOCK_BYTES // cell_bytes
        base_vaddr = self.to_virtual(base_paddr)
        # Thread every cell onto the block's free list.
        for i in range(n_cells):
            cell_paddr = base_paddr + i * cell_bytes
            next_vaddr = base_vaddr + (i + 1) * cell_bytes if i + 1 < n_cells else 0
            self.mem.write_word(cell_paddr, next_vaddr)
        desc = self.block_list.append(base_vaddr, cell_bytes, n_cells, base_vaddr)
        self._class_blocks[class_index].append(desc.index)
        self._block_class[desc.index] = class_index
        return desc.index

    def refresh_free_lists(self) -> None:
        """Re-discover free cells after a sweep.

        The sweeper wrote per-block free-list heads into the block list;
        every block whose head is non-zero can serve allocations again.
        """
        self._class_blocks = {i: [] for i in range(len(self.size_classes))}
        for desc in self.block_list:
            class_index = self._block_class.get(desc.index)
            if class_index is None:
                # A block created by someone else (tests); infer its class.
                class_index = self.size_classes.class_for(
                    desc.cell_bytes // WORD_BYTES
                )
                self._block_class[desc.index] = class_index
            if desc.freelist_head != 0:
                self._class_blocks[class_index].append(desc.index)

    # -- allocation -------------------------------------------------------------

    def _pop_cell(self, class_index: int) -> int:
        """Pop a free cell for the class; returns its *virtual* address."""
        blocks = self._class_blocks[class_index]
        while blocks:
            block_index = blocks[0]
            head = self.block_list.freelist_head(block_index)
            if head == 0:
                blocks.pop(0)
                continue
            next_vaddr = self.mem.read_word(self.to_physical(head))
            self.block_list.set_freelist_head(block_index, next_vaddr)
            return head
        block_index = self._carve_block(class_index)
        return self._pop_cell(class_index)

    def alloc(self, shape: ObjectShape) -> int:
        """Allocate an object; returns its reference (virtual address).

        Only MarkSweep-space sizes are accepted; larger objects belong to
        the large-object space (see :class:`~repro.heap.heapimage.
        ManagedHeap`).
        """
        n_words = self.layout.words_needed(shape)
        class_index = self.size_classes.class_for(n_words)
        cell_vaddr = self._pop_cell(class_index)
        cell_paddr = self.to_physical(cell_vaddr)
        status_paddr = self.layout.initialize(
            self.mem, cell_paddr, shape, mark=self.alloc_mark_value
        )
        self.objects_allocated += 1
        self.bytes_allocated += self.size_classes.cell_bytes(class_index)
        return self.to_virtual(status_paddr)

    # -- introspection -----------------------------------------------------------

    @property
    def blocks_in_use(self) -> int:
        return (self._fresh_cursor - self.space_pstart) // BLOCK_BYTES

    def free_cells(self) -> int:
        """Total free cells across all blocks (walks the real free lists)."""
        total = 0
        for desc in self.block_list:
            head = desc.freelist_head
            seen = 0
            while head != 0:
                seen += 1
                if seen > desc.n_cells:
                    raise RuntimeError(
                        f"free list of block {desc.index} is cyclic or corrupt"
                    )
                head = self.mem.read_word(self.to_physical(head))
            total += seen
        return total
