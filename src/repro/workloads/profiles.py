"""Per-benchmark heap-shape profiles.

Each profile describes the heap statistics of one DaCapo benchmark (small
size, 200 MB max heap, as in §VI-A). The numbers are synthetic but chosen
to match the published characteristics of these workloads and the paper's
observations:

* mostly small objects (a few reference fields plus a handful of payload
  words — typical Java object sizes of 24-64 bytes);
* a small set of *hot* objects that a large fraction of references point
  at ("about 10% of mark operations access the same 56 objects", §V-C);
* per-benchmark live fractions and allocation intensities that produce the
  spread of GC times in Fig. 1a (roughly 10-35% of CPU time).

``n_objects`` is the object count at ``scale=1.0``; experiments typically
run at ``scale=0.1`` or smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Heap and mutator statistics for one benchmark."""

    name: str
    description: str
    # -- heap shape at collection time --------------------------------------
    n_objects: int  # objects in the MarkSweep space at scale = 1.0
    live_fraction: float  # fraction of objects reachable at GC time
    mean_refs: float  # mean reference fields per non-array object
    mean_payload_words: float  # mean non-reference payload words
    array_fraction: float  # fraction of objects that are reference arrays
    mean_array_refs: float  # mean elements in a reference array
    null_ref_fraction: float  # fraction of reference fields left null
    los_fraction: float  # fraction of objects large enough for the LOS
    # -- sharing skew ----------------------------------------------------------
    hot_objects: int  # count of highly shared objects (Fig. 21a)
    hot_ref_fraction: float  # fraction of cross-refs aimed at hot objects
    # -- mutator behaviour (Figs. 1a/1b) -----------------------------------------
    mutator_cycles_per_byte: float  # useful work per allocated byte
    gc_time_fraction_paper: float  # Fig. 1a's reported value (target shape)
    root_fraction: float = 0.004  # roots as a fraction of live objects

    def scaled_objects(self, scale: float) -> int:
        n = int(self.n_objects * scale)
        if n < 64:
            raise ValueError(
                f"scale {scale} leaves only {n} objects; use a larger scale"
            )
        return n


def _profile(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


#: The six DaCapo benchmarks of §VI-A.
DACAPO_PROFILES: Dict[str, BenchmarkProfile] = {
    "avrora": _profile(
        name="avrora",
        description="AVR microcontroller simulator: many tiny event/state "
        "objects, moderate churn, deep linked structures.",
        n_objects=240_000,
        live_fraction=0.55,
        mean_refs=1.7,
        mean_payload_words=2.0,
        array_fraction=0.06,
        mean_array_refs=10.0,
        null_ref_fraction=0.15,
        los_fraction=0.002,
        hot_objects=56,
        hot_ref_fraction=0.10,
        mutator_cycles_per_byte=17.0,
        gc_time_fraction_paper=0.13,
    ),
    "luindex": _profile(
        name="luindex",
        description="Lucene indexing: token/term objects, string payloads, "
        "medium-lived index structures.",
        n_objects=180_000,
        live_fraction=0.50,
        mean_refs=1.8,
        mean_payload_words=3.0,
        array_fraction=0.10,
        mean_array_refs=12.0,
        null_ref_fraction=0.12,
        los_fraction=0.004,
        hot_objects=56,
        hot_ref_fraction=0.10,
        mutator_cycles_per_byte=21.0,
        gc_time_fraction_paper=0.10,
    ),
    "lusearch": _profile(
        name="lusearch",
        description="Lucene search: allocation-heavy query processing with "
        "short-lived result objects (the Fig. 1b latency workload).",
        n_objects=300_000,
        live_fraction=0.35,
        mean_refs=1.5,
        mean_payload_words=3.0,
        array_fraction=0.12,
        mean_array_refs=10.0,
        null_ref_fraction=0.18,
        los_fraction=0.003,
        hot_objects=56,
        hot_ref_fraction=0.10,
        mutator_cycles_per_byte=6.3,
        gc_time_fraction_paper=0.30,
    ),
    "pmd": _profile(
        name="pmd",
        description="Java source analyzer: AST-heavy heaps with high "
        "fan-out nodes and symbol tables.",
        n_objects=260_000,
        live_fraction=0.60,
        mean_refs=2.5,
        mean_payload_words=2.0,
        array_fraction=0.08,
        mean_array_refs=14.0,
        null_ref_fraction=0.10,
        los_fraction=0.004,
        hot_objects=64,
        hot_ref_fraction=0.11,
        mutator_cycles_per_byte=9.0,
        gc_time_fraction_paper=0.25,
    ),
    "sunflow": _profile(
        name="sunflow",
        description="Ray tracer: float-payload geometry objects and larger "
        "reference arrays (scene graph, photon maps).",
        n_objects=220_000,
        live_fraction=0.45,
        mean_refs=1.2,
        mean_payload_words=5.0,
        array_fraction=0.20,
        mean_array_refs=16.0,
        null_ref_fraction=0.10,
        los_fraction=0.006,
        hot_objects=48,
        hot_ref_fraction=0.09,
        mutator_cycles_per_byte=11.0,
        gc_time_fraction_paper=0.19,
    ),
    "xalan": _profile(
        name="xalan",
        description="XSLT processor: extreme allocation churn of DOM/SAX "
        "nodes, the heaviest GC load in Fig. 1a.",
        n_objects=320_000,
        live_fraction=0.40,
        mean_refs=2.2,
        mean_payload_words=2.0,
        array_fraction=0.10,
        mean_array_refs=12.0,
        null_ref_fraction=0.12,
        los_fraction=0.003,
        hot_objects=56,
        hot_ref_fraction=0.12,
        mutator_cycles_per_byte=5.2,
        gc_time_fraction_paper=0.35,
    ),
}

#: Stable plotting/order used across all figures.
BENCHMARK_ORDER: Tuple[str, ...] = (
    "avrora", "luindex", "lusearch", "pmd", "sunflow", "xalan",
)
