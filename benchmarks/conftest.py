"""Benchmark-suite configuration.

Each benchmark regenerates one figure of the paper via
:mod:`repro.harness.experiments` and prints the resulting table (visible
with ``pytest -s``). Scales are chosen so the full suite finishes in
minutes; raise them (env ``REPRO_BENCH_SCALE``) for tighter reproductions.
"""

import os

import pytest

#: Baseline scale for benchmark runs (fraction of the paper's heap sizes).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))


@pytest.fixture
def bench_scale():
    return BENCH_SCALE


def run_and_render(benchmark, fn, **kwargs):
    """Benchmark one experiment runner and print its table."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result.render())
    return result
