"""Figure 19: mark-queue sizing, spill traffic, compression."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig19_queue_size_tradeoffs(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig19, scale=bench_scale * 0.75,
                            queue_entries=(128, 512, 2048, 16384))
    by_config = {}
    for row in result.rows:
        by_config.setdefault(row[1], []).append(row)

    tq128 = by_config["TQ=128"]
    comp = by_config["Comp."]
    # Spilling shrinks as the queue grows, vanishing once the queue covers
    # the traversal's peak frontier...
    assert tq128[-1][2] <= tq128[0][2]
    assert tq128[-1][2] == 0
    # ...and stays a minority of memory requests even at the smallest
    # queue (the paper reports ~2% at its scale; our scaled heaps have a
    # proportionally larger frontier, so the share is higher but the
    # mark time is still barely affected — the paper's actual conclusion).
    assert tq128[0][3] < 25.0
    mark_times = [row[4] for row in tq128]
    assert max(mark_times) < 1.7 * min(mark_times)
    # Compression halves the spilled bytes; requests drop accordingly.
    assert comp[0][2] < 0.8 * tq128[0][2]
