"""Determinism of the concurrent collector across kernels and fastpath.

The concurrent cycle interleaves three actors (traversal unit, mutator,
relocator) on one simulated clock — the kind of machinery where hidden
nondeterminism (dict ordering, engine-dependent tie-breaking) creeps in.
This gate pins one workload's *exact* cycle counts, heap digest, and trace
digest, and requires all three priority-queue kernels x fastpath on/off to
land on the same constants.

If a deliberate model change shifts the numbers, re-pin by running the
recipe in ``_run_pinned`` and updating the constants — but confirm the
whole 3x2 matrix still agrees first.
"""

import hashlib

import pytest

from repro.core.concurrent.collect import ConcurrentCycle
from repro.core.config import GCUnitConfig
from repro.core.driver import HWGCDriver
from repro.engine.faultplane import parse_hwfault_spec
from repro.engine.trace import TraceBus
from repro.heap.verify import reachable_digest
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder
from repro.workloads.mutator import ConcurrentMutator

#: [mark, handshake, sweep, objects_marked, cells_freed,
#:  write_barrier_hits, objects_relocated] for the pinned recipe below.
PINNED_CONC_CYCLES = [51_306, 106, 52_931, 726, 721, 77, 384]
#: reachable_digest(heap)[:16] after the pinned cycle.
PINNED_CONC_HEAP_DIGEST = "27a1bb5206fe925e"
#: sha256(repr(list(trace)))[:16] — every simulated event, in order.
PINNED_CONC_TRACE_DIGEST = "73a521b655447d85"


def _run_pinned():
    """The pinned recipe: luindex @ scale 0.008 seed 13, a 120-op seed-3
    mutator, 2 evacuated blocks, trace attached, bare ConcurrentCycle."""
    built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.008,
                             seed=13).build()
    heap = built.heap
    heap.memsys.stats.trace = TraceBus()
    mutator = ConcurrentMutator(built, n_ops=120, seed=3)
    result = ConcurrentCycle(heap, mutator=mutator, relocate_blocks=2).run()
    trace_digest = hashlib.sha256(
        repr(list(heap.memsys.stats.trace)).encode()).hexdigest()[:16]
    counters = [result.mark_cycles, result.handshake_cycles,
                result.sweep_cycles, result.objects_marked,
                result.cells_freed, result.write_barrier_hits,
                result.objects_relocated]
    return counters, reachable_digest(heap)[:16], trace_digest


@pytest.mark.slow
class TestPinnedConcurrentGate:
    """Engine x fastpath matrix must reproduce the pinned constants."""

    @pytest.mark.parametrize("engine", ["bucket", "heapq", "vector"])
    @pytest.mark.parametrize("fastpath", ["0", "1"])
    def test_pinned_constants(self, monkeypatch, engine, fastpath):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        monkeypatch.setenv("REPRO_FASTPATH", fastpath)
        counters, heap_dig, trace_dig = _run_pinned()
        assert counters == PINNED_CONC_CYCLES
        assert heap_dig == PINNED_CONC_HEAP_DIGEST
        assert trace_dig == PINNED_CONC_TRACE_DIGEST


class TestRunToRunDeterminism:
    def test_two_runs_identical(self):
        first = _run_pinned()
        second = _run_pinned()
        assert first == second

    def test_armed_but_quiet_plane_is_invisible(self):
        """A fault plane whose trigger never fires must not perturb the
        concurrent collection by a single cycle or event."""
        counters_clean, heap_clean, trace_clean = _run_pinned()
        plane = parse_hwfault_spec("drop:dram:1000000000")
        built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.008,
                                 seed=13).build()
        heap = built.heap
        plane.install(heap.memsys.stats, heap.memsys.phys)
        try:
            heap.memsys.stats.trace = TraceBus()
            mutator = ConcurrentMutator(built, n_ops=120, seed=3)
            result = ConcurrentCycle(heap, mutator=mutator,
                                     relocate_blocks=2).run()
        finally:
            plane.uninstall()
        assert not plane.fired
        assert [result.mark_cycles, result.handshake_cycles,
                result.sweep_cycles, result.objects_marked,
                result.cells_freed, result.write_barrier_hits,
                result.objects_relocated] == counters_clean
        assert reachable_digest(heap)[:16] == heap_clean
        assert hashlib.sha256(
            repr(list(heap.memsys.stats.trace)).encode()
        ).hexdigest()[:16] == trace_clean

    def test_supervised_equals_bare_digest(self):
        """run_gc_safe's watchdog slicing must not change the modeled
        outcome — same reachable graph as the unsupervised cycle."""
        _counters, heap_dig, _trace = _run_pinned()
        built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.008,
                                 seed=13).build()
        driver = HWGCDriver(built.heap, GCUnitConfig())
        driver.init_device()
        safe = driver.run_gc_safe(
            mode="concurrent",
            mutator=ConcurrentMutator(built, n_ops=120, seed=3),
            relocate_blocks=2)
        assert safe.outcome == "hardware"
        assert reachable_digest(built.heap)[:16] == heap_dig
