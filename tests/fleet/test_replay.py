"""Fleet replay invariants that need the real simulation stack."""

from repro.fleet.balancer import spray, tenant_arrivals
from repro.fleet.report import simulate_fleet
from repro.fleet.spec import FleetSpec
from repro.fleet.timeline import base_run, tenant_timeline
from repro.workloads.latency import QueryReplay

SPEC = FleetSpec(n_tenants=2, profiles_cycle=("luindex", "avrora"),
                 scale=0.008, seed=1, n_gcs=1, n_queries=400, warmup=40)


class TestBalancer:
    def test_spray_is_seeded_and_partitioning(self):
        a = spray(500, 3, seed=4)
        assert a == spray(500, 3, seed=4)
        assert a != spray(500, 3, seed=5)
        assert set(a) <= {0, 1, 2}
        per_tenant = [tenant_arrivals(a, 1000, t, 100) for t in range(3)]
        assert sum(len(arr) for arr, _w in per_tenant) == 500
        assert sum(w for _arr, w in per_tenant) == 100
        # Arrival cycles are the global slots, strictly increasing.
        for arrivals, _w in per_tenant:
            assert arrivals == sorted(set(arrivals))

    def test_unpicked_tenant_gets_empty_slice(self):
        arrivals, warm = tenant_arrivals([0, 0, 0], 1000, tenant=2, warmup=2)
        assert (arrivals, warm) == ([], 0)


class TestDedicatedIdentity:
    def test_dedicated_equals_single_tenant_replay(self):
        """Under ``dedicated`` a tenant's latency must be exactly what a
        standalone QueryReplay of its own timeline and arrival slice
        yields — other tenants must have zero effect on it."""
        fleet = simulate_fleet(SPEC, policies=("dedicated",))
        assignments = spray(SPEC.n_queries, SPEC.n_tenants, SPEC.seed)
        for tenant in SPEC.tenants():
            run = tenant_timeline(
                base_run(tenant.benchmark, "hw", SPEC.scale, SPEC.seed,
                         SPEC.n_gcs),
                tenant.phase_frac)
            arrivals, n_warm = tenant_arrivals(
                assignments, fleet.interval_cycles, tenant.index,
                SPEC.warmup)
            solo = QueryReplay(
                run, interval_cycles=fleet.interval_cycles,
                service_mean_cycles=fleet.service_mean_cycles,
                seed=tenant.seed,
            ).replay(arrivals, warmup=n_warm,
                     horizon=SPEC.n_queries * fleet.interval_cycles)
            report = fleet.reports[(tenant.index, "dedicated")]
            assert report.replay.records == solo.records
            assert (report.replay.arrived, report.replay.completed,
                    report.replay.in_flight, report.replay.shed) == \
                (solo.arrived, solo.completed, solo.in_flight, solo.shed)

    def test_removing_a_tenant_does_not_move_the_others(self):
        """Cell independence: replaying a subset reproduces the full
        fleet's rows for those tenants byte-for-byte (all policies)."""
        full = simulate_fleet(SPEC)
        subset = simulate_fleet(SPEC, tenant_indices=(1,))
        for policy in full.policies:
            assert subset.reports[(1, policy)].row() == \
                full.reports[(1, policy)].row()


class TestConservation:
    def test_conservation_across_policies(self):
        spec = FleetSpec(n_tenants=2, profiles_cycle=("luindex", "avrora"),
                         scale=0.008, seed=3, n_gcs=1, n_queries=400,
                         warmup=40, shed_backlog_intervals=2)
        fleet = simulate_fleet(spec)
        for report in fleet.reports.values():
            assert report.replay.conserved
