"""Mutator model: allocation churn between stop-the-world collections.

Drives the repeated-GC experiments: "average across all GC pauses during
the benchmark execution" (Fig. 15's methodology) and the CPU-time-in-GC
fractions of Fig. 1a. A *phase* allocates new objects off the free lists
the previous sweep produced, attaches some of them to the live graph
(overwriting references, which disconnects old subtrees into garbage),
drops and adds roots, then triggers a collection with the configured
collector (software baseline or the GC unit).

Mutator time is modeled analytically: ``allocated_bytes x
profile.mutator_cycles_per_byte`` — the application work a benchmark does
per byte it allocates, the knob that spreads benchmarks across Fig. 1a's
10-35% range.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.config import GCUnitConfig, HardwareGCResult
from repro.core.unit import GCUnit
from repro.heap.layout import ObjectShape
from repro.swgc.cpu import CPUConfig
from repro.swgc.marksweep import SoftwareCollector, SoftwareGCResult
from repro.workloads.graphgen import BuiltHeap


@dataclass
class GCPauseRecord:
    """One GC pause.

    For a stop-the-world collection ``mark_cycles`` is the whole mark; for
    a concurrent collection it is only the termination handshake (the part
    that pauses the application) and ``concurrent_mark_cycles`` holds the
    marking span that raced the running mutator.
    """

    index: int
    start_cycle: int  # position on the run's virtual timeline
    mark_cycles: int
    sweep_cycles: int
    objects_marked: int
    cells_freed: int
    concurrent_mark_cycles: int = 0

    @property
    def pause_cycles(self) -> int:
        return self.mark_cycles + self.sweep_cycles

    @property
    def pause_ms(self) -> float:
        return self.pause_cycles / 1e6


@dataclass
class MutatorRunResult:
    """Timeline of a whole benchmark run: mutator segments + GC pauses."""

    collector: str
    pauses: List[GCPauseRecord] = field(default_factory=list)
    mutator_cycles: int = 0

    @property
    def gc_cycles(self) -> int:
        return sum(p.pause_cycles for p in self.pauses)

    @property
    def total_cycles(self) -> int:
        return self.gc_cycles + self.mutator_cycles

    @property
    def gc_time_fraction(self) -> float:
        total = self.total_cycles
        return self.gc_cycles / total if total else 0.0

    @property
    def mean_mark_cycles(self) -> float:
        if not self.pauses:
            return 0.0
        return sum(p.mark_cycles for p in self.pauses) / len(self.pauses)

    @property
    def mean_sweep_cycles(self) -> float:
        if not self.pauses:
            return 0.0
        return sum(p.sweep_cycles for p in self.pauses) / len(self.pauses)

    def timeline(self) -> List[tuple]:
        """[(kind, start, end), ...] alternating 'mutator'/'gc' segments."""
        segments = []
        cursor = 0
        for pause in self.pauses:
            if pause.start_cycle > cursor:
                segments.append(("mutator", cursor, pause.start_cycle))
            segments.append(
                ("gc", pause.start_cycle, pause.start_cycle + pause.pause_cycles)
            )
            cursor = pause.start_cycle + pause.pause_cycles
        return segments


class ConcurrentMutator:
    """A deterministic application process that runs *during* marking.

    Implements the duck type :class:`repro.core.concurrent.collect.
    ConcurrentCycle` expects: ``process(barriers)`` is a simulation-process
    generator whose every reference operation goes through the given
    :class:`~repro.core.concurrent.barriers.MutatorBarriers`, and
    ``final_roots()`` is the logical root set once mutation has quiesced.

    Two properties the test battery leans on:

    * **Replayability**: the generator yields only integer delays, so the
      differential oracle can step it functionally (plain iteration, no
      simulator) against a restored checkpoint and perform the *identical*
      operation sequence — same RNG stream, same allocation order, same
      addresses.
    * **Forwarding hygiene**: after a relocation prologue the BFS oracle
      still reports old addresses for objects referenced by stale fields
      (quarantined source cells keep decodable headers), so the working
      pool is normalized through the forwarding table before first use.

    Operation mix per step: allocate-and-attach (exercising allocate-black
    and the hidden-object race of Fig. 3), or detach/stash/reattach moves
    (read through the read barrier, two barriered writes — the exact
    interleaving SATB exists to survive). Root removals are deferred to
    ``final_roots()`` so the traversal's snapshot stays stable.
    """

    def __init__(
        self,
        built: BuiltHeap,
        n_ops: int = 240,
        period: int = 400,
        seed: int = 0,
        alloc_fraction: float = 0.35,
        root_add_fraction: float = 0.3,
        drop_root_fraction: float = 0.1,
    ):
        self.built = built
        self.heap = built.heap
        self.n_ops = n_ops
        self.period = period
        self.seed = seed
        self.alloc_fraction = alloc_fraction
        self.root_add_fraction = root_add_fraction
        self.drop_root_fraction = drop_root_fraction
        self.rng = random.Random(seed)
        from repro.workloads.graphgen import HeapGraphBuilder
        self._builder = HeapGraphBuilder(built.profile, built.scale,
                                         built.seed)
        self.ops = 0
        self.allocs = 0
        #: Addresses allocated during the cycle (allocate-black evidence).
        self.allocated: List[int] = []
        self.alloc_failures = 0
        self.ref_reads = 0
        self.ref_writes = 0
        self.roots_added = 0
        self._final_roots: Optional[List[int]] = None

    def process(self, barriers):
        from repro.heap.allocator import OutOfMemoryError

        heap = self.heap
        rng = self.rng
        fwd = barriers.forwarding
        resolve = fwd.resolve if fwd is not None else (lambda a: a)
        # Normalize through the forwarding table: pre-fixup BFS yields old
        # addresses for stale-referenced relocated objects.
        pool = sorted({resolve(a) for a in heap.reachable()})
        roots = [resolve(r) for r in heap.roots.read_all()]
        allocating = True
        for _ in range(self.n_ops):
            yield self.period
            self.ops += 1
            if rng.random() < self.alloc_fraction and allocating:
                shape = self._builder._sample_shape(rng)
                try:
                    addr = heap.alloc(shape)
                except MemoryError:
                    self.alloc_failures += 1
                    allocating = False
                    continue
                self.allocs += 1
                self.allocated.append(addr)
                view = heap.view(addr)
                for i in range(view.n_refs):
                    if rng.random() < 0.5 and pool:
                        # Initializing store into a fresh (null) field: the
                        # barrier has nothing old to publish, skip it.
                        view.set_ref(i, rng.choice(pool))
                if pool and rng.random() >= self.root_add_fraction:
                    parent = heap.view(rng.choice(pool))
                    if parent.n_refs:
                        barriers.write_ref(
                            parent, rng.randrange(parent.n_refs), addr)
                        self.ref_writes += 1
                else:
                    # Physical publish so the polling reader marks the new
                    # root mid-cycle; the logical list feeds final_roots().
                    heap.roots.append(addr)
                    roots.append(addr)
                    self.roots_added += 1
                pool.append(addr)
            elif len(pool) >= 2:
                # The Fig. 3 interleaving: detach a subtree, stash the only
                # reference while the collector may scan both parents, then
                # reattach elsewhere.
                src = heap.view(rng.choice(pool))
                dst = heap.view(rng.choice(pool))
                if src.n_refs == 0 or dst.n_refs == 0:
                    continue
                slot = rng.randrange(src.n_refs)
                moved = barriers.read_ref(src, slot)
                self.ref_reads += 1
                if moved == 0:
                    continue
                barriers.write_ref(src, slot, 0)
                yield max(1, self.period // 4)
                barriers.write_ref(dst, rng.randrange(dst.n_refs), moved)
                self.ref_writes += 2
        # Root drops deferred to quiescence: dropping during marking would
        # invalidate the traversal's SATB snapshot.
        self._final_roots = [r for r in roots
                             if rng.random() >= self.drop_root_fraction]

    def final_roots(self) -> List[int]:
        if self._final_roots is None:
            raise RuntimeError("mutator has not quiesced yet")
        return list(self._final_roots)


class MutatorModel:
    """Alternates mutator churn phases with collections."""

    def __init__(
        self,
        built: BuiltHeap,
        collector: str = "sw",
        unit_config: Optional[GCUnitConfig] = None,
        cpu_config: Optional[CPUConfig] = None,
        churn_fraction: float = 0.5,
        attach_probability: float = 0.55,
        seed: Optional[int] = None,
        conc_ops: int = 160,
        conc_period: int = 400,
        relocate_blocks: int = 0,
    ):
        if collector not in ("sw", "hw", "concurrent"):
            raise ValueError(f"unknown collector {collector!r}")
        self.built = built
        self.heap = built.heap
        self.collector = collector
        self.unit_config = unit_config if unit_config is not None else GCUnitConfig()
        self.cpu_config = cpu_config
        self.churn_fraction = churn_fraction
        self.attach_probability = attach_probability
        self.rng = random.Random(seed if seed is not None else built.seed + 7)
        self.conc_ops = conc_ops
        self.conc_period = conc_period
        self.relocate_blocks = relocate_blocks
        self._sw: Optional[SoftwareCollector] = None
        self.last_gc_result: Union[SoftwareGCResult, HardwareGCResult, None] = None

    # -- one mutator phase -------------------------------------------------

    def mutate_phase(self) -> int:
        """Allocate/churn; returns the allocated byte count."""
        heap = self.heap
        profile = self.built.profile
        rng = self.rng
        bytes_before = heap.allocator.bytes_allocated
        live_list = sorted(heap.live_marksweep_objects())
        n_new = max(16, int(profile.scaled_objects(self.built.scale)
                            * self.churn_fraction))
        from repro.workloads.graphgen import HeapGraphBuilder
        builder = HeapGraphBuilder(profile, self.built.scale, self.built.seed)
        new_addrs = []
        for _ in range(n_new):
            shape = builder._sample_shape(rng)
            addr = heap.alloc(shape)
            new_addrs.append(addr)
            view = heap.view(addr)
            # Wire the new object's own fields to other new or live objects.
            for i in range(view.n_refs):
                r = rng.random()
                if r < profile.null_ref_fraction:
                    continue
                pool = new_addrs if rng.random() < 0.7 else live_list
                if pool:
                    view.set_ref(i, rng.choice(pool))
            # Attach to the live graph (or die young).
            if live_list and rng.random() < self.attach_probability:
                parent = heap.view(rng.choice(live_list))
                if parent.n_refs > 0:
                    # Overwriting a reference may orphan an old subtree —
                    # exactly how real mutators create garbage.
                    parent.set_ref(rng.randrange(parent.n_refs), addr)
        # Root churn: drop a few roots, add a few fresh ones.
        roots = [r for r in heap.roots.read_all()
                 if rng.random() > 0.05]
        roots.extend(rng.choice(new_addrs)
                     for _ in range(max(1, len(new_addrs) // 200)))
        heap.set_roots(roots)
        return heap.allocator.bytes_allocated - bytes_before

    # -- one collection ---------------------------------------------------------

    def collect_once(self) -> GCPauseRecord:
        heap = self.heap
        if self.collector == "sw":
            if self._sw is None:
                self._sw = SoftwareCollector(heap, cpu_config=self.cpu_config)
            result: Union[SoftwareGCResult, HardwareGCResult] = \
                self._sw.collect()
        elif self.collector == "concurrent":
            return self._collect_concurrent()
        else:
            unit = GCUnit(heap, self.unit_config)
            result = unit.collect()
        self.last_gc_result = result
        live = heap.reachable()
        heap.prune_dead(live)
        heap.complete_gc_cycle()
        return GCPauseRecord(
            index=heap.gc_count - 1,
            start_cycle=0,  # placed on the timeline by run()
            mark_cycles=result.mark_cycles,
            sweep_cycles=result.sweep_cycles,
            objects_marked=result.objects_marked,
            cells_freed=result.cells_freed,
        )

    def _collect_concurrent(self) -> GCPauseRecord:
        """One concurrent cycle with a fresh mutator racing the mark.

        The pause the timeline records is handshake + sweep only; the
        marking span that overlapped the application rides along in
        ``concurrent_mark_cycles`` for reporting.
        """
        from repro.core.concurrent.collect import ConcurrentCycle

        heap = self.heap
        mutator = ConcurrentMutator(
            self.built, n_ops=self.conc_ops, period=self.conc_period,
            seed=self.rng.randrange(2 ** 31))
        cycle = ConcurrentCycle(heap, self.unit_config, mutator,
                                relocate_blocks=self.relocate_blocks)
        result = cycle.run(GCUnit(heap, self.unit_config))
        self.last_gc_result = result
        live = heap.reachable()
        heap.prune_dead(live)
        heap.complete_gc_cycle()
        return GCPauseRecord(
            index=heap.gc_count - 1,
            start_cycle=0,  # placed on the timeline by run()
            mark_cycles=result.handshake_cycles,
            sweep_cycles=result.sweep_cycles,
            objects_marked=result.objects_marked,
            cells_freed=result.cells_freed,
            concurrent_mark_cycles=result.concurrent_cycles,
        )

    # -- full run -----------------------------------------------------------------

    def run(self, n_gcs: int = 3) -> MutatorRunResult:
        """Alternate churn phases and collections, building the timeline."""
        profile = self.built.profile
        result = MutatorRunResult(collector=self.collector)
        cursor = 0
        for i in range(n_gcs):
            if i > 0:
                allocated = self.mutate_phase()
                mutator_cycles = int(allocated * profile.mutator_cycles_per_byte)
            else:
                # The initial heap was built before the first GC; charge its
                # allocation the same way.
                allocated = self.heap.allocator.bytes_allocated
                mutator_cycles = int(allocated * profile.mutator_cycles_per_byte)
            result.mutator_cycles += mutator_cycles
            cursor += mutator_cycles
            pause = self.collect_once()
            pause.start_cycle = cursor
            pause.index = i
            result.pauses.append(pause)
            cursor += pause.pause_cycles
        return result
