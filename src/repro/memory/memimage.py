"""Functional physical-memory image.

A flat, word-addressed memory backed by a numpy ``uint64`` array. Every
functional artifact of the system — object headers, reference fields, free
lists, page tables, the spill region, the hwgc root region — lives in this
image, so the GC algorithms (software and accelerator) operate on *real*
in-memory data structures rather than Python mirrors.

Timing is handled separately by the DRAM/cache models; see
:mod:`repro.memory.interconnect` for how functional access and timing are
paired.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.memory.config import WORD_BYTES

_U64_MASK = (1 << 64) - 1


class PhysicalMemory:
    """Word-granularity physical memory with atomic-update helpers."""

    def __init__(self, size_bytes: int):
        if size_bytes % WORD_BYTES != 0:
            raise ValueError(f"memory size must be word-aligned: {size_bytes}")
        self.size_bytes = size_bytes
        self.words = np.zeros(size_bytes // WORD_BYTES, dtype=np.uint64)

    def _index(self, addr: int) -> int:
        if addr % WORD_BYTES != 0:
            raise ValueError(f"unaligned word access: {addr:#x}")
        if not 0 <= addr < self.size_bytes:
            raise IndexError(f"physical address out of range: {addr:#x}")
        return addr // WORD_BYTES

    # -- scalar access ----------------------------------------------------

    def read_word(self, addr: int) -> int:
        """Read the 64-bit word at byte address ``addr``."""
        # Checks inlined (``_index`` only re-run to raise its message):
        # every functional access in a run goes through here.
        if addr % WORD_BYTES or not 0 <= addr < self.size_bytes:
            self._index(addr)
        return int(self.words[addr // WORD_BYTES])

    def write_word(self, addr: int, value: int) -> None:
        """Write the 64-bit word at byte address ``addr``."""
        if addr % WORD_BYTES or not 0 <= addr < self.size_bytes:
            self._index(addr)
        self.words[addr // WORD_BYTES] = np.uint64(value & _U64_MASK)

    # -- atomics (the marker's fetch-or / fetch-and, §IV-A) ---------------

    def fetch_or(self, addr: int, mask: int) -> int:
        """Atomically OR ``mask`` into the word; returns the *old* value."""
        idx = self._index(addr)
        old = int(self.words[idx])
        self.words[idx] = np.uint64((old | mask) & _U64_MASK)
        return old

    def fetch_and(self, addr: int, mask: int) -> int:
        """Atomically AND ``mask`` into the word; returns the *old* value."""
        idx = self._index(addr)
        old = int(self.words[idx])
        self.words[idx] = np.uint64(old & mask & _U64_MASK)
        return old

    # -- bulk access (the tracer's unit-stride reference copies) ----------

    def read_words(self, addr: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``addr``."""
        idx = self._index(addr)
        if idx + count > len(self.words):
            raise IndexError(f"bulk read past end: {addr:#x} +{count} words")
        return [int(w) for w in self.words[idx : idx + count]]

    def write_words(self, addr: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at ``addr``."""
        idx = self._index(addr)
        vals = [np.uint64(v & _U64_MASK) for v in values]
        if idx + len(vals) > len(self.words):
            raise IndexError(f"bulk write past end: {addr:#x} +{len(vals)} words")
        self.words[idx : idx + len(vals)] = vals

    def fill(self, addr: int, count: int, value: int = 0) -> None:
        """Fill ``count`` words starting at ``addr`` with ``value``."""
        idx = self._index(addr)
        self.words[idx : idx + count] = np.uint64(value & _U64_MASK)

    # -- snapshots (runs mutate mark bits / free lists) --------------------

    def snapshot(self) -> np.ndarray:
        """A copy of the entire image, for restoring between GC runs."""
        return self.words.copy()

    def restore(self, snap: np.ndarray) -> None:
        """Restore a snapshot taken from this memory."""
        if snap.shape != self.words.shape:
            raise ValueError("snapshot shape mismatch")
        np.copyto(self.words, snap)

    def __repr__(self) -> str:
        return f"PhysicalMemory({self.size_bytes // (1024 * 1024)} MiB)"
